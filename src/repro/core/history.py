"""Result persistence, sweep journals and run-to-run comparison.

DSE campaigns accumulate over days (a real FPGA compile is hours); this
module stores :class:`~repro.core.results.ResultSet` runs as JSON-lines
files and diffs two runs — the "did the new toolchain/model change the
picture?" question the paper's planned results-sharing website was
meant to answer.

:class:`SweepJournal` is the crash-resilience side of the same format:
:func:`~repro.core.sweep.explore` streams every completed point to the
journal as it finishes, keyed by the point's parameter fingerprint, so
a campaign killed mid-sweep resumes exactly where it died.  Journal
records additionally carry the result ``detail`` and the measurement
fingerprint, which lets the loader verify that a restored point is
byte-identical to re-running it — a record that fails that check is
treated as absent and the point simply re-runs.

Journals are a small write-ahead log (format v2, see
:data:`JOURNAL_SCHEMA`): every record carries CRC32 + length framing
over its canonical serialization, the loader truncates exactly a torn
final record (the signature a ``kill -9`` mid-``write`` leaves behind)
and **quarantines** — never silently drops — mid-file corruption to a
``<journal>.quarantine`` sidecar, long campaigns rotate the live file
into sealed ``.seg-NNNNN`` segments, and
:func:`compact_journal`/:func:`fsck_journal` (CLI:
``mp-stream journal compact|fsck``) checkpoint and audit a journal
family offline.  v1 journals (pre-WAL, no framing) still load, with a
deprecation note in the fsck report.  Durable journals additionally
``fsync`` the parent directory on creation and every rotation, so a
power loss cannot lose the whole file to an unsynced directory entry.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

import numpy as np

from ..errors import BenchmarkError, DiskFullError, JournalError
from ..obs import events as obs_events
from ..obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults ⇄ core)
    from ..faults import FaultPlan
from .params import (
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    StreamLocus,
    TuningParameters,
)
from .results import ResultSet, RunResult

__all__ = [
    "save_results",
    "load_results",
    "point_fingerprint",
    "params_to_record",
    "params_from_record",
    "result_to_record",
    "result_from_record",
    "SweepJournal",
    "JournalFsck",
    "fsck_journal",
    "compact_journal",
    "JOURNAL_SCHEMA",
    "TORN_WRITE_EXIT_CODE",
    "CompareEntry",
    "compare_results",
]

_SCHEMA = 1

#: journal WAL format: flat JSONL records framed with ``crc32``/``nbytes``
JOURNAL_SCHEMA = 2

#: exit code of a process killed by an injected ``journal_write`` torn
#: append — distinct from the executors' worker-crash code so chaos
#: harnesses can tell "died mid-point" from "died mid-journal-append"
TORN_WRITE_EXIT_CODE = 5


def _params_to_json(p: TuningParameters) -> dict:
    return {
        "kernel": p.kernel.value,
        "array_bytes": p.array_bytes,
        "dtype": p.dtype.cname,
        "vector_width": p.vector_width,
        "pattern": p.pattern.value,
        "loop": p.loop.value,
        "unroll": p.unroll,
        "reqd_work_group_size": p.reqd_work_group_size,
        "num_simd_work_items": p.num_simd_work_items,
        "num_compute_units": p.num_compute_units,
        "xcl_pipeline_loop": p.xcl_pipeline_loop,
        "xcl_pipeline_workitems": p.xcl_pipeline_workitems,
        "xcl_max_memory_ports": p.xcl_max_memory_ports,
        "xcl_memory_port_width": p.xcl_memory_port_width,
        "locus": p.locus.value,
    }


def _params_from_json(data: dict) -> TuningParameters:
    return TuningParameters(
        kernel=KernelName(data["kernel"]),
        array_bytes=int(data["array_bytes"]),
        dtype=next(d for d in DataType if d.cname == data["dtype"]),
        vector_width=int(data["vector_width"]),
        pattern=AccessPattern(data["pattern"]),
        loop=LoopManagement(data["loop"]),
        unroll=int(data["unroll"]),
        reqd_work_group_size=data.get("reqd_work_group_size"),
        num_simd_work_items=int(data.get("num_simd_work_items", 1)),
        num_compute_units=int(data.get("num_compute_units", 1)),
        xcl_pipeline_loop=bool(data.get("xcl_pipeline_loop", False)),
        xcl_pipeline_workitems=bool(data.get("xcl_pipeline_workitems", False)),
        xcl_max_memory_ports=bool(data.get("xcl_max_memory_ports", False)),
        xcl_memory_port_width=data.get("xcl_memory_port_width"),
        locus=StreamLocus(data.get("locus", "device")),
    )


def _jsonify(value: object) -> object:
    """Reduce a detail payload to pure-JSON types, recursively.

    Numpy scalars become Python numbers, tuples become lists; anything
    exotic falls back to ``repr``. Applied before a record is written
    so a loaded result's ``detail`` compares equal (and fingerprints
    identically) to the in-memory original.
    """
    if isinstance(value, (str, bool)) or value is None:
        return value
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return repr(value)


def _result_to_record(r: RunResult, *, detail: bool = False) -> dict:
    record = {
        "schema": _SCHEMA,
        "target": r.target,
        "params": _params_to_json(r.params),
        "times_s": list(r.times),
        "moved_bytes": r.moved_bytes,
        "validated": r.validated,
        "error": r.error,
        "failure_kind": r.failure_kind,
    }
    if detail:
        record["detail"] = _jsonify(r.detail)
    return record


def _result_from_record(record: dict) -> RunResult:
    return RunResult(
        target=record["target"],
        params=_params_from_json(record["params"]),
        times=tuple(record["times_s"]),
        moved_bytes=int(record["moved_bytes"]),
        validated=bool(record["validated"]),
        error=record.get("error", ""),
        failure_kind=record.get("failure_kind", ""),
        detail=record.get("detail", {}) or {},
    )


# Public aliases of the record codec. The scheduler's process backend
# ships results and parameters across the worker pipe in exactly this
# format: the JSON roundtrip is proven fingerprint-stable (it is what
# journal resume relies on), which is what makes a process-backend
# campaign byte-identical to a serial one.


def params_to_record(p: TuningParameters) -> dict:
    """Canonical JSON form of a parameter point (wire/journal format)."""
    return _params_to_json(p)


def params_from_record(record: dict) -> TuningParameters:
    """Inverse of :func:`params_to_record`."""
    return _params_from_json(record)


def result_to_record(r: RunResult, *, detail: bool = True) -> dict:
    """Canonical JSON form of a result (wire/journal format).

    With ``detail=True`` (the default here, unlike the compact
    :func:`save_results` files) the record reconstructs a result whose
    :meth:`~repro.core.results.RunResult.fingerprint` equals the
    original's.
    """
    return _result_to_record(r, detail=detail)


def result_from_record(record: dict) -> RunResult:
    """Inverse of :func:`result_to_record`."""
    return _result_from_record(record)


def save_results(results: Iterable[RunResult], path: str | Path) -> int:
    """Append results to a JSON-lines file; returns the count written.

    Missing parent directories are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("a") as fh:
        for r in results:
            fh.write(json.dumps(_result_to_record(r)) + "\n")
            count += 1
    return count


def load_results(path: str | Path) -> ResultSet:
    """Load a JSON-lines result file back into a :class:`ResultSet`."""
    path = Path(path)
    out = ResultSet()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BenchmarkError(f"{path}:{lineno}: bad JSON ({exc})") from exc
        if record.get("schema") != _SCHEMA:
            raise BenchmarkError(
                f"{path}:{lineno}: unsupported schema {record.get('schema')!r}"
            )
        out.add(_result_from_record(record))
    return out


# --------------------------------------------------------------------------
# Sweep journals (resumable campaigns)
# --------------------------------------------------------------------------


def point_fingerprint(target: str, params: TuningParameters) -> str:
    """Deterministic identity of one grid point on one target.

    A short hash of the canonical parameter serialization — the journal
    key :func:`~repro.core.sweep.explore` uses to skip already-completed
    points on resume, and the key fault injection derives its per-point
    decisions from.
    """
    payload = json.dumps(
        {"target": target, "params": _params_to_json(params)}, sort_keys=True
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


# -- WAL v2 record framing ---------------------------------------------------


def _journal_core(key: str, result: RunResult) -> dict:
    """The v2 record *before* framing: v1 fields + point key + fingerprint."""
    record = _result_to_record(result, detail=True)
    record["schema"] = JOURNAL_SCHEMA
    record["point"] = key
    record["fingerprint"] = result.fingerprint()
    return record


def _journal_payload(record: dict) -> bytes:
    """Canonical bytes the CRC/length framing covers (framing fields out)."""
    core = {k: v for k, v in record.items() if k not in ("crc32", "nbytes")}
    return json.dumps(core, sort_keys=True).encode()


def _frame_record(record: dict) -> dict:
    framed = dict(record)
    payload = _journal_payload(record)
    framed["nbytes"] = len(payload)
    framed["crc32"] = format(zlib.crc32(payload) & 0xFFFFFFFF, "08x")
    return framed


def _frame_error(record: dict) -> str:
    """Why a v2 record fails its framing checks (empty string = intact)."""
    crc = record.get("crc32")
    nbytes = record.get("nbytes")
    if not isinstance(crc, str) or not isinstance(nbytes, int):
        return "missing crc32/nbytes framing"
    payload = _journal_payload(record)
    if nbytes != len(payload):
        return f"length mismatch (framed {nbytes}, actual {len(payload)})"
    actual = format(zlib.crc32(payload) & 0xFFFFFFFF, "08x")
    if crc != actual:
        return f"crc32 mismatch (framed {crc}, actual {actual})"
    return ""


def _journal_line(key: str, result: RunResult) -> bytes:
    return (
        json.dumps(_frame_record(_journal_core(key, result)), sort_keys=True) + "\n"
    ).encode()


# -- journal family scanning (shared by load / fsck / compact) ---------------


@dataclass
class _Entry:
    """One classified journal line."""

    file: Path
    lineno: int
    raw: str
    status: str  # ok | v1 | torn | corrupt | stale
    reason: str = ""
    key: str | None = None
    result: RunResult | None = None


@dataclass
class _FamilyScan:
    files: list[Path]
    entries: list[_Entry]
    #: live file exists, is non-empty and lacks a trailing newline
    live_unterminated: bool = False
    #: byte length of the unterminated final line of the live file
    live_tail_bytes: int = 0


def _segments(path: Path) -> list[Path]:
    return sorted(path.parent.glob(path.name + ".seg-*"))


def _family_files(path: Path) -> list[Path]:
    """Scan order: sealed segments (oldest first), then the live file."""
    files = [seg for seg in _segments(path) if seg.is_file()]
    if path.is_file():
        files.append(path)
    return files


def _classify_line(
    file: Path, lineno: int, raw: str, *, may_be_torn: bool
) -> _Entry:
    try:
        record = json.loads(raw)
        if not isinstance(record, dict):
            raise ValueError("not a JSON object")
    except ValueError:
        if may_be_torn:
            return _Entry(file, lineno, raw, "torn", "truncated mid-append")
        return _Entry(file, lineno, raw, "corrupt", "unparsable JSON")
    schema = record.get("schema")
    if schema == JOURNAL_SCHEMA:
        status = "ok"
        err = _frame_error(record)
        if err:
            return _Entry(file, lineno, raw, "corrupt", err)
    elif schema == _SCHEMA:
        status = "v1"
    else:
        return _Entry(
            file, lineno, raw, "corrupt", f"unsupported schema {schema!r}"
        )
    try:
        key = record["point"]
        result = _result_from_record(record)
    except (ValueError, KeyError, TypeError) as exc:
        return _Entry(file, lineno, raw, "corrupt", f"unreconstructable ({exc})")
    if record.get("fingerprint") != result.fingerprint():
        return _Entry(
            file, lineno, raw, "stale",
            "measurement fingerprint mismatch", key=key,
        )
    return _Entry(file, lineno, raw, status, key=key, result=result)


def _scan_family(path: Path) -> _FamilyScan:
    scan = _FamilyScan(files=_family_files(path), entries=[])
    for file in scan.files:
        data = file.read_bytes()
        if not data:
            continue
        terminated = data.endswith(b"\n")
        is_live = file == path
        if is_live and not terminated:
            scan.live_unterminated = True
            scan.live_tail_bytes = len(data) - data.rfind(b"\n") - 1
        lines = data.decode("utf-8", errors="replace").split("\n")
        if terminated:
            lines.pop()
        last = len(lines)
        for lineno, raw in enumerate(lines, start=1):
            if not raw.strip():
                continue
            # only the unterminated final line of the *live* file can be
            # a torn append; segments are sealed, so damage there is
            # corruption, not an interrupted write
            may_be_torn = is_live and not terminated and lineno == last
            scan.entries.append(
                _classify_line(file, lineno, raw, may_be_torn=may_be_torn)
            )
    return scan


@dataclass(frozen=True)
class JournalFsck:
    """Read-only integrity report over a journal family.

    Produced by :func:`fsck_journal` (CLI: ``mp-stream journal fsck``).
    ``clean`` means every record verified: no torn tail, no corrupt
    lines, no stale fingerprints — v1 records are *valid* (read-compat)
    but flagged in :attr:`notes` as deprecated.
    """

    path: str
    files: tuple[str, ...]
    records: int
    valid: int
    v1_records: int
    torn_tail: int
    corrupt: int
    stale: int
    notes: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not (self.torn_tail or self.corrupt or self.stale)

    @property
    def dropped(self) -> int:
        """Records a :meth:`SweepJournal.load` would not restore."""
        return self.torn_tail + self.corrupt + self.stale

    def describe(self) -> str:
        lines = [f"journal fsck: {self.path}"]
        if not self.files:
            lines.append("  no journal files found")
            lines.append("status: missing")
            return "\n".join(lines)
        lines.append(f"  files: {len(self.files)} ({', '.join(self.files)})")
        lines.append(
            f"  records: {self.records}"
            f"  valid: {self.valid}  v1: {self.v1_records}"
        )
        lines.append(
            f"  torn tail: {self.torn_tail}"
            f"  corrupt: {self.corrupt}  stale: {self.stale}"
        )
        for note in self.notes:
            lines.append(f"  - {note}")
        status = "clean" if self.clean else "damaged (resume re-runs what fsck flags)"
        lines.append(f"status: {status}")
        return "\n".join(lines)


def _fsck_from_scan(path: Path, scan: _FamilyScan) -> JournalFsck:
    notes: list[str] = []
    torn = corrupt = stale = valid = v1 = 0
    for e in scan.entries:
        if e.status == "ok":
            valid += 1
        elif e.status == "v1":
            v1 += 1
        elif e.status == "torn":
            torn += 1
            notes.append(
                f"{e.file.name}:{e.lineno}: {e.reason}"
                f" ({len(e.raw.encode())} bytes; load truncates it)"
            )
        else:
            if e.status == "corrupt":
                corrupt += 1
            else:
                stale += 1
            notes.append(f"{e.file.name}:{e.lineno}: {e.reason}")
    if scan.live_unterminated and not torn:
        # the tear landed exactly on the newline: the record is intact
        # but the file must be terminated before the next append
        torn += 1
        notes.append(
            f"{path.name}: final record intact but unterminated"
            " (load repairs it without data loss)"
        )
    if v1:
        notes.append(
            f"{v1} v1 record(s): read-compatible but deprecated —"
            " run `mp-stream journal compact` to upgrade to v2 framing"
        )
    return JournalFsck(
        path=str(path),
        files=tuple(f.name for f in scan.files),
        records=len(scan.entries),
        valid=valid,
        v1_records=v1,
        torn_tail=torn,
        corrupt=corrupt,
        stale=stale,
        notes=tuple(notes),
    )


def fsck_journal(path: str | Path) -> JournalFsck:
    """Verify every record of a journal family without modifying it.

    Checks, per line: JSON parsability, schema, CRC32/length framing
    (v2), result reconstruction, and the stored measurement
    fingerprint. Detects a torn final record on the live file. Never
    writes — safe to run against the journal of a live campaign.
    """
    path = Path(path)
    return _fsck_from_scan(path, _scan_family(path))


def scan_results(path: str | Path) -> dict[str, RunResult]:
    """Read-only restorable view of a journal family: the latest valid
    result per point key.

    Unlike :meth:`SweepJournal.load` this never truncates a torn tail
    or writes a quarantine sidecar, so it is safe to run repeatedly
    against the journal of a *live* campaign — it is what
    ``mp-stream obs serve --journal`` scrapes on.
    """
    out: dict[str, RunResult] = {}
    for entry in _scan_family(Path(path)).entries:
        if entry.status in ("ok", "v1") and entry.key is not None:
            assert entry.result is not None
            out[entry.key] = entry.result
    return out


def _fsync_dir(path: Path) -> None:
    """Best-effort fsync of ``path``'s parent directory entry."""
    try:
        fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform without dir-fsync
        pass
    finally:
        os.close(fd)


def _append_quarantine(
    path: Path, entries: "list[_Entry]", *, durable: bool
) -> Path:
    """Preserve bad lines in the ``<journal>.quarantine`` sidecar."""
    side = Path(str(path) + ".quarantine")
    with side.open("a") as fh:
        for e in entries:
            fh.write(
                json.dumps(
                    {
                        "file": e.file.name,
                        "lineno": e.lineno,
                        "reason": e.reason,
                        "line": e.raw,
                    }
                )
                + "\n"
            )
        fh.flush()
        if durable:
            os.fsync(fh.fileno())
    return side


def _rewrite_without(file: Path, bad_linenos: "set[int]", *, durable: bool) -> None:
    """Atomically rewrite ``file`` keeping good lines verbatim."""
    data = file.read_bytes()
    lines = data.split(b"\n")
    if data.endswith(b"\n"):
        lines.pop()
    kept = [ln for i, ln in enumerate(lines, start=1) if i not in bad_linenos]
    tmp = file.with_name(file.name + ".tmp")
    with tmp.open("wb") as fh:
        for ln in kept:
            fh.write(ln + b"\n")
        fh.flush()
        if durable:
            os.fsync(fh.fileno())
    os.replace(tmp, file)
    if durable:
        _fsync_dir(file)


def _quarantine_entries(
    path: Path, entries: "list[_Entry]", *, durable: bool
) -> Path:
    side = _append_quarantine(path, entries, durable=durable)
    by_file: dict[Path, set[int]] = {}
    for e in entries:
        by_file.setdefault(e.file, set()).add(e.lineno)
    for file, bad in by_file.items():
        _rewrite_without(file, bad, durable=durable)
    return side


def compact_journal(path: str | Path, *, durable: bool = True) -> int:
    """Checkpoint-compact a journal family into one all-v2 live file.

    Replays the family (segments then live, later records win per
    point key), rewrites the latest record of every point as a freshly
    framed v2 line — upgrading any v1 records — into a temp file that
    atomically replaces the live journal (``os.replace``), then unlinks
    the sealed segments and fsyncs the directory. Corrupt/stale lines
    are quarantined to the sidecar first, torn tails included: nothing
    is silently dropped. Returns the number of records kept.
    """
    path = Path(path)
    scan = _scan_family(path)
    if not scan.files:
        return 0
    bad = [e for e in scan.entries if e.status in ("torn", "corrupt", "stale")]
    if bad:
        _append_quarantine(path, bad, durable=durable)
    latest: dict[str, _Entry] = {}
    order: list[str] = []
    for e in scan.entries:
        if e.status not in ("ok", "v1"):
            continue
        assert e.key is not None and e.result is not None
        if e.key not in latest:
            order.append(e.key)
        latest[e.key] = e
    tmp = path.with_name(path.name + ".compact-tmp")
    with tmp.open("wb") as fh:
        for key in order:
            fh.write(_journal_line(key, latest[key].result))
        fh.flush()
        if durable:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    for seg in _segments(path):
        seg.unlink()
    if durable:
        _fsync_dir(path)
    obs_events.emit(
        "journal_compacted",
        path=str(path),
        records=len(order),
        quarantined=len(bad),
    )
    return len(order)


class SweepJournal:
    """Crash-consistent WAL of completed sweep points (format v2).

    Each record is the :func:`save_results` schema plus the point key,
    the full (JSON-reduced) ``detail``, the measurement fingerprint,
    and CRC32 + length framing over the canonical serialization —
    still one flat JSON object per line, so v1 readers (and `jq`)
    keep working. Appends are flushed per point under a lock; a
    campaign killed mid-append leaves at most one torn final line,
    which :meth:`load` truncates exactly (counted in
    :attr:`discarded`/:attr:`repaired`). Mid-file damage — corrupt
    framing, stale fingerprints — is quarantined to the
    ``<journal>.quarantine`` sidecar and reported via a
    ``journal_dropped_records`` event, never silently dropped.

    ``durable=True`` additionally ``fsync``\\ s after every append *and*
    fsyncs the parent directory once on creation: a flush only hands
    the line to the OS, which a power loss — or the hard ``os._exit``
    a ``worker_crash`` fault injects — can still discard, and a synced
    file in an unsynced directory can vanish whole. The
    process-executor restart path trusts the journal after exactly
    such kills, so campaigns that lean on it should opt in
    (``--durable-journal`` on the CLI) and pay the per-point fsync.

    ``rotate_records=N`` seals the live file into a ``.seg-NNNNN``
    segment every N records; :meth:`compact` (CLI: ``mp-stream journal
    compact``) folds a family back into one deduplicated live file.

    ``faults`` wires the journal into a seeded
    :class:`~repro.faults.FaultPlan` for the ``journal_write`` (torn
    append + hard exit :data:`TORN_WRITE_EXIT_CODE`), ``journal_fsync``
    and ``disk_full`` sites; draws are keyed on the journal *sequence
    number*, so crash schedules are reproducible yet do not re-fire
    eternally across resumes. The campaign scheduler auto-wires the
    engine's plan here.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        durable: bool = False,
        faults: "FaultPlan | None" = None,
        rotate_records: int | None = None,
    ):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.durable = durable
        self.faults = faults
        if rotate_records is not None and rotate_records < 1:
            raise BenchmarkError(
                f"rotate_records must be >= 1, got {rotate_records}"
            )
        self.rotate_records = rotate_records
        self._lock = threading.Lock()
        self._dir_synced = False
        self._tail_checked = False
        #: records ever appended to the family — the fault-draw key
        self._seq = 0
        self._live_records = 0
        #: points restored from the journal instead of re-executed
        self.reused = 0
        #: points actually executed (and appended) this campaign
        self.executed = 0
        #: journal records dropped on load (torn / corrupt / stale)
        self.discarded = 0
        #: tail repairs applied on load (truncation or re-termination)
        self.repaired = 0
        #: deprecated v1 records accepted on load (read-compat)
        self.v1_loaded = 0
        #: fsck-style breakdown of the last :meth:`load`
        self.load_report: JournalFsck | None = None

    # -- lifecycle ---------------------------------------------------------------

    def exists(self) -> bool:
        """Does any file of the journal family exist?"""
        return bool(_family_files(self.path))

    def load(self) -> dict[str, RunResult]:
        """Completed points by key, healing the family as it goes.

        A torn final record (the mark of a crash mid-append) is
        truncated *exactly*; corrupt or stale records are quarantined
        to the sidecar and the damaged file atomically rewritten
        without them. Every unusable record is counted in
        :attr:`discarded` and reported via a
        ``journal_dropped_records`` event — the affected points simply
        re-run, so a damaged journal degrades to extra work, never to
        wrong data or silent loss.
        """
        done: dict[str, RunResult] = {}
        torn_n = corrupt_n = stale_n = 0
        with self._lock:
            scan = _scan_family(self.path)
            self.load_report = _fsck_from_scan(self.path, scan)
            self._tail_checked = True
            if not scan.files:
                return done
            torn = [e for e in scan.entries if e.status == "torn"]
            if torn:
                size = self.path.stat().st_size
                os.truncate(self.path, size - scan.live_tail_bytes)
                self.discarded += 1
                self.repaired += 1
                torn_n = 1
            elif scan.live_unterminated:
                with self.path.open("ab") as fh:
                    fh.write(b"\n")
                    fh.flush()
                    if self.durable:
                        os.fsync(fh.fileno())
                self.repaired += 1
            bad = [e for e in scan.entries if e.status in ("corrupt", "stale")]
            if bad:
                _quarantine_entries(self.path, bad, durable=self.durable)
                corrupt_n = sum(1 for e in bad if e.status == "corrupt")
                stale_n = len(bad) - corrupt_n
                self.discarded += len(bad)
            valid = 0
            live_valid = 0
            for e in scan.entries:
                if e.status not in ("ok", "v1"):
                    continue
                assert e.key is not None and e.result is not None
                done[e.key] = e.result
                valid += 1
                if e.file == self.path:
                    live_valid += 1
                if e.status == "v1":
                    self.v1_loaded += 1
            self._seq = valid
            self._live_records = live_valid
            dropped = torn_n + corrupt_n + stale_n
        if dropped:
            obs_events.emit(
                "journal_dropped_records",
                path=str(self.path),
                dropped=dropped,
                torn=torn_n,
                corrupt=corrupt_n,
                stale=stale_n,
            )
            obs_metrics.count("journal.dropped_records", dropped)
        if self.v1_loaded:
            obs_metrics.count("journal.v1_records", self.v1_loaded)
        return done

    # -- appending ---------------------------------------------------------------

    def record(self, key: str, result: RunResult) -> None:
        """Append one completed point (thread-safe, flushed; fsynced
        when the journal is ``durable``).

        Raises :class:`~repro.errors.JournalError` (or
        :class:`~repro.errors.DiskFullError` on ``ENOSPC``) when the
        append cannot be made durable — the campaign scheduler treats
        that as journal *degradation*, not campaign death.
        """
        line = _journal_line(key, result)
        with self._lock:
            seq = self._seq
            self._seq += 1
            faults = self.faults
            try:
                if faults is not None and faults.should_fire(
                    "disk_full", key, seq
                ):
                    raise DiskFullError(
                        f"injected disk_full fault appending {key}"
                        f" to {self.path} (record {seq})"
                    )
                if not self._tail_checked:
                    self._heal_tail_for_append()
                    self._tail_checked = True
                torn = (
                    faults.torn_write(key, seq, len(line))
                    if faults is not None
                    else None
                )
                with self.path.open("ab") as fh:
                    if torn is not None:
                        # a torn append is a *crash*, not an error: write
                        # the prefix a dying process would leave, force it
                        # to disk so the tear is observable, and die hard
                        fh.write(line[:torn])
                        fh.flush()
                        os.fsync(fh.fileno())
                        os._exit(TORN_WRITE_EXIT_CODE)
                    fh.write(line)
                    fh.flush()
                    if (
                        faults is not None
                        and self.durable
                        and faults.should_fire("journal_fsync", key, seq)
                    ):
                        raise JournalError(
                            f"injected journal_fsync fault appending {key}"
                            f" to {self.path} (record {seq})"
                        )
                    if self.durable:
                        os.fsync(fh.fileno())
                if self.durable and not self._dir_synced:
                    _fsync_dir(self.path)
                    self._dir_synced = True
            except OSError as exc:
                if exc.errno == errno.ENOSPC:
                    raise DiskFullError(
                        f"journal append to {self.path} hit ENOSPC: {exc}"
                    ) from exc
                raise JournalError(
                    f"journal append to {self.path} failed: {exc}"
                ) from exc
            self.executed += 1
            self._live_records += 1
            obs_metrics.count("journal.records")
            if (
                self.rotate_records is not None
                and self._live_records >= self.rotate_records
            ):
                self._rotate()

    def _heal_tail_for_append(self) -> None:
        """Repair an unterminated live tail before the first append.

        Appending after a torn final line would merge the new record
        into the garbage; truncate the tear (or just terminate an
        intact-but-unterminated record) first.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return
        if not data or data.endswith(b"\n"):
            return
        idx = data.rfind(b"\n")
        tail = data[idx + 1:]
        try:
            record = json.loads(tail.decode("utf-8", errors="replace"))
            intact = isinstance(record, dict)
        except ValueError:
            intact = False
        with self.path.open("ab") as fh:
            if intact:
                fh.write(b"\n")
            else:
                fh.truncate(idx + 1)
                self.discarded += 1
            fh.flush()
            if self.durable:
                os.fsync(fh.fileno())
        self.repaired += 1

    def _rotate(self) -> None:
        """Seal the live file into the next ``.seg-NNNNN`` segment."""
        segs = _segments(self.path)
        indices = []
        for seg in segs:
            suffix = seg.name.rsplit(".seg-", 1)[-1]
            if suffix.isdigit():
                indices.append(int(suffix))
        next_index = max(indices, default=0) + 1
        seg = self.path.with_name(f"{self.path.name}.seg-{next_index:05d}")
        try:
            os.replace(self.path, seg)
        except OSError as exc:
            raise JournalError(
                f"journal rotation {self.path} -> {seg.name} failed: {exc}"
            ) from exc
        if self.durable:
            _fsync_dir(self.path)
        rotated = self._live_records
        self._live_records = 0
        obs_events.emit(
            "journal_rotated",
            path=str(self.path),
            segment=seg.name,
            records=rotated,
        )
        obs_metrics.count("journal.rotations")

    # -- maintenance -------------------------------------------------------------

    def sync(self) -> None:
        """fsync the live file and directory — a shutdown checkpoint.

        Best-effort: called on the graceful-shutdown path, where an
        fsync failure must not mask the interrupt itself.
        """
        with self._lock:
            try:
                if self.path.exists():
                    fd = os.open(self.path, os.O_RDONLY)
                    try:
                        os.fsync(fd)
                    finally:
                        os.close(fd)
                _fsync_dir(self.path)
            except OSError:  # pragma: no cover - best-effort by design
                pass

    def quarantine(self) -> Path | None:
        """Set the whole family aside as ``*.quarantined`` (best-effort).

        The scheduler calls this when the journal fails mid-sweep: the
        campaign keeps running in-memory and the on-disk state is
        preserved for post-mortem instead of being appended to by a
        journal known to be failing. Returns the quarantined live path,
        or ``None`` if the rename failed.
        """
        with self._lock:
            target = Path(str(self.path) + ".quarantined")
            try:
                for seg in _segments(self.path):
                    os.replace(seg, str(seg) + ".quarantined")
                if self.path.exists():
                    os.replace(self.path, target)
                _fsync_dir(self.path)
                return target
            except OSError:
                return None

    def compact(self) -> int:
        """Checkpoint-compact this journal's family; see :func:`compact_journal`."""
        with self._lock:
            count = compact_journal(self.path, durable=self.durable)
            self._live_records = count
            self._seq = count
            return count

    def fsck(self) -> JournalFsck:
        """Read-only integrity report; see :func:`fsck_journal`."""
        return fsck_journal(self.path)

    def note_reused(self, count: int = 1) -> None:
        with self._lock:
            self.reused += count


@dataclass(frozen=True)
class CompareEntry:
    """One configuration's before/after."""

    target: str
    description: str
    before_gbs: float | None
    after_gbs: float | None

    @property
    def ratio(self) -> float | None:
        if not self.before_gbs or self.after_gbs is None:
            return None
        return self.after_gbs / self.before_gbs

    @property
    def status(self) -> str:
        if self.before_gbs is None:
            return "new"
        if self.after_gbs is None:
            return "removed"
        r = self.ratio or 0.0
        if r > 1.05:
            return "improved"
        if r < 0.95:
            return "regressed"
        return "unchanged"


def compare_results(
    before: ResultSet, after: ResultSet
) -> list[CompareEntry]:
    """Match configurations across two runs and classify the changes."""

    def key(r: RunResult) -> tuple:
        return (r.target, r.params)

    before_map = {key(r): r for r in before if r.ok}
    after_map = {key(r): r for r in after if r.ok}
    entries = []
    for k in sorted(set(before_map) | set(after_map), key=str):
        b = before_map.get(k)
        a = after_map.get(k)
        some = b or a
        assert some is not None
        entries.append(
            CompareEntry(
                target=some.target,
                description=some.params.describe(),
                before_gbs=b.bandwidth_gbs if b else None,
                after_gbs=a.bandwidth_gbs if a else None,
            )
        )
    return entries
