"""Result persistence and run-to-run comparison.

DSE campaigns accumulate over days (a real FPGA compile is hours); this
module stores :class:`~repro.core.results.ResultSet` runs as JSON-lines
files and diffs two runs — the "did the new toolchain/model change the
picture?" question the paper's planned results-sharing website was
meant to answer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..errors import BenchmarkError
from .params import (
    AccessPattern,
    DataType,
    KernelName,
    LoopManagement,
    StreamLocus,
    TuningParameters,
)
from .results import ResultSet, RunResult

__all__ = ["save_results", "load_results", "CompareEntry", "compare_results"]

_SCHEMA = 1


def _params_to_json(p: TuningParameters) -> dict:
    return {
        "kernel": p.kernel.value,
        "array_bytes": p.array_bytes,
        "dtype": p.dtype.cname,
        "vector_width": p.vector_width,
        "pattern": p.pattern.value,
        "loop": p.loop.value,
        "unroll": p.unroll,
        "reqd_work_group_size": p.reqd_work_group_size,
        "num_simd_work_items": p.num_simd_work_items,
        "num_compute_units": p.num_compute_units,
        "xcl_pipeline_loop": p.xcl_pipeline_loop,
        "xcl_pipeline_workitems": p.xcl_pipeline_workitems,
        "xcl_max_memory_ports": p.xcl_max_memory_ports,
        "xcl_memory_port_width": p.xcl_memory_port_width,
        "locus": p.locus.value,
    }


def _params_from_json(data: dict) -> TuningParameters:
    return TuningParameters(
        kernel=KernelName(data["kernel"]),
        array_bytes=int(data["array_bytes"]),
        dtype=next(d for d in DataType if d.cname == data["dtype"]),
        vector_width=int(data["vector_width"]),
        pattern=AccessPattern(data["pattern"]),
        loop=LoopManagement(data["loop"]),
        unroll=int(data["unroll"]),
        reqd_work_group_size=data.get("reqd_work_group_size"),
        num_simd_work_items=int(data.get("num_simd_work_items", 1)),
        num_compute_units=int(data.get("num_compute_units", 1)),
        xcl_pipeline_loop=bool(data.get("xcl_pipeline_loop", False)),
        xcl_pipeline_workitems=bool(data.get("xcl_pipeline_workitems", False)),
        xcl_max_memory_ports=bool(data.get("xcl_max_memory_ports", False)),
        xcl_memory_port_width=data.get("xcl_memory_port_width"),
        locus=StreamLocus(data.get("locus", "device")),
    )


def save_results(results: Iterable[RunResult], path: str | Path) -> int:
    """Append results to a JSON-lines file; returns the count written."""
    path = Path(path)
    count = 0
    with path.open("a") as fh:
        for r in results:
            record = {
                "schema": _SCHEMA,
                "target": r.target,
                "params": _params_to_json(r.params),
                "times_s": list(r.times),
                "moved_bytes": r.moved_bytes,
                "validated": r.validated,
                "error": r.error,
            }
            fh.write(json.dumps(record) + "\n")
            count += 1
    return count


def load_results(path: str | Path) -> ResultSet:
    """Load a JSON-lines result file back into a :class:`ResultSet`."""
    path = Path(path)
    out = ResultSet()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise BenchmarkError(f"{path}:{lineno}: bad JSON ({exc})") from exc
        if record.get("schema") != _SCHEMA:
            raise BenchmarkError(
                f"{path}:{lineno}: unsupported schema {record.get('schema')!r}"
            )
        out.add(
            RunResult(
                target=record["target"],
                params=_params_from_json(record["params"]),
                times=tuple(record["times_s"]),
                moved_bytes=int(record["moved_bytes"]),
                validated=bool(record["validated"]),
                error=record.get("error", ""),
            )
        )
    return out


@dataclass(frozen=True)
class CompareEntry:
    """One configuration's before/after."""

    target: str
    description: str
    before_gbs: float | None
    after_gbs: float | None

    @property
    def ratio(self) -> float | None:
        if not self.before_gbs or self.after_gbs is None:
            return None
        return self.after_gbs / self.before_gbs

    @property
    def status(self) -> str:
        if self.before_gbs is None:
            return "new"
        if self.after_gbs is None:
            return "removed"
        r = self.ratio or 0.0
        if r > 1.05:
            return "improved"
        if r < 0.95:
            return "regressed"
        return "unchanged"


def compare_results(
    before: ResultSet, after: ResultSet
) -> list[CompareEntry]:
    """Match configurations across two runs and classify the changes."""

    def key(r: RunResult) -> tuple:
        return (r.target, r.params)

    before_map = {key(r): r for r in before if r.ok}
    after_map = {key(r): r for r in after if r.ok}
    entries = []
    for k in sorted(set(before_map) | set(after_map), key=str):
        b = before_map.get(k)
        a = after_map.get(k)
        some = b or a
        assert some is not None
        entries.append(
            CompareEntry(
                target=some.target,
                description=some.params.describe(),
                before_gbs=b.bandwidth_gbs if b else None,
                after_gbs=a.bandwidth_gbs if a else None,
            )
        )
    return entries
