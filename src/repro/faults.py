"""Deterministic fault injection for campaign-resilience testing.

A multi-hour DSE campaign has to survive the failure modes real
AOCL/SDAccel-class toolchains exhibit: transient build failures, flaky
kernel launches, points that stall for hours, and corrupted readbacks.
This module makes those failures *injectable and reproducible*, so the
retry/backoff, watchdog and journal machinery in
:mod:`repro.core.engine` / :mod:`repro.core.sweep` is itself testable.

A :class:`FaultPlan` is seeded and **keyed per point**: whether a fault
fires at a given ``(site, point, attempt)`` is derived by hashing the
plan seed with the point's parameter fingerprint — never from a shared
stream — so the decision is independent of execution order. A parallel
sweep, a serial sweep, and a killed-and-resumed sweep all see the same
faults at the same points, which is what makes byte-identical resumed
campaigns possible.

Injected errors carry the :class:`~repro.errors.TransientError` mixin:
the engine retries them with exponential backoff, and the build caches
refuse to memoize them.

Sites (see :data:`FAULT_SITES`):

``generate`` / ``compile`` / ``build``
    The staged pipeline's front half; ``build`` models a toolchain
    flake (a place-and-route crash, not a resource overflow — those
    are real failures and stay permanent).
``launch``
    ``enqueue_nd_range_kernel`` rejects the launch, as a wedged driver
    would.
``readback``
    The result transfer flips bits; STREAM validation catches it and
    the engine retries the point.
``stall``
    The point hangs (bounded by ``stall_s``), cooperatively checking
    the watchdog so a budget cancels it as a ``timeout`` failure.
``verify``
    A simulated *miscompile*: the differential re-execution inside the
    engine's optional verify stage (see :mod:`repro.verify`) has one
    word corrupted before comparison, so the verifier must flag the
    point. Unlike every other site this one is deliberately **not**
    transient — a miscompile reproduces on retry — and the engine
    records it as a permanent ``"verify_mismatch"`` failure.
``worker_crash``
    The whole *worker* dies mid-point (a segfaulting toolchain, an OOM
    kill) — consulted by the campaign executors
    (:mod:`repro.core.scheduler.executors`), not by the engine's
    ``check()``: the process backend hard-kills the worker process,
    serial/thread backends simulate the same death. The attempt number
    in the draw is the point's *restart count*, so requeue-then-succeed
    schedules are deterministic and backend-independent; exhausting the
    scheduler's restart budget records a permanent ``"worker_crash"``
    failure.
``journal_write``
    A *torn write*: the process dies mid-``write(2)`` while appending a
    journal record, leaving a truncated final line on disk — consulted
    by :class:`~repro.core.history.SweepJournal`, which writes a
    deterministic prefix of the record and hard-kills the process
    (:data:`~repro.core.history.TORN_WRITE_EXIT_CODE`). The attempt
    number in the draw is the journal *sequence number* (records ever
    appended), not a per-point retry count, so a resumed journal does
    not re-fire the same tear forever.
``journal_fsync``
    The per-record ``fsync`` of a ``--durable-journal`` fails
    (``EIO``-style) — the journal raises
    :class:`~repro.errors.JournalError` and the scheduler degrades to
    in-memory operation instead of aborting the campaign.
``disk_full``
    The journal append hits ``ENOSPC``
    (:class:`~repro.errors.DiskFullError`); like ``journal_fsync``,
    surfaces as a ``journal_degraded`` event, not a dead campaign.
    Also keyed on the journal sequence number.

Specs are parsed from compact CLI text::

    mp-stream sweep --inject-faults 'build=0.3,launch=0.2,seed=7'
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .errors import (
    BenchmarkError,
    BuildError,
    LaunchError,
    ReproError,
    TransientError,
    ValidationError,
)
from .rng import DEFAULT_SEED, make_rng

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "InjectedBuildFault",
    "InjectedLaunchFault",
    "InjectedReadbackFault",
]

#: every place a fault can be injected
FAULT_SITES = (
    "generate",
    "compile",
    "build",
    "launch",
    "readback",
    "stall",
    "verify",
    "vectorize",
    "worker_crash",
    "journal_write",
    "journal_fsync",
    "disk_full",
)

#: wall seconds a stalled point hangs when no watchdog cancels it
DEFAULT_STALL_S = 30.0


class InjectedFault(TransientError, ReproError):
    """An injected transient failure in the generate/compile stages."""


class InjectedBuildFault(TransientError, BuildError):
    """An injected transient toolchain failure during the device build."""


class InjectedLaunchFault(TransientError, LaunchError):
    """An injected flaky kernel launch."""


class InjectedReadbackFault(TransientError, ValidationError):
    """Validation caught an injected readback corruption."""


@dataclass(frozen=True)
class FaultSpec:
    """Parsed fault-injection specification.

    ``rates`` maps a site name to a per-point firing probability;
    ``seed`` drives every draw; ``stall_s`` bounds how long an injected
    stall hangs.
    """

    rates: tuple[tuple[str, float], ...] = ()
    seed: int = DEFAULT_SEED
    stall_s: float = DEFAULT_STALL_S

    def __post_init__(self) -> None:
        for site, rate in self.rates:
            if site not in FAULT_SITES:
                raise BenchmarkError(
                    f"unknown fault site {site!r}; valid: {', '.join(FAULT_SITES)}"
                )
            if not 0.0 <= rate <= 1.0:
                raise BenchmarkError(
                    f"fault rate for {site!r} must be in [0, 1], got {rate}"
                )
        if self.stall_s <= 0:
            raise BenchmarkError(f"stall_s must be > 0, got {self.stall_s}")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse ``"build=0.3,launch=0.2,seed=7,stall_s=5"``."""
        rates: dict[str, float] = {}
        seed = DEFAULT_SEED
        stall_s = DEFAULT_STALL_S
        for token in text.split(","):
            token = token.strip()
            if not token:
                continue
            if "=" not in token:
                raise BenchmarkError(
                    f"bad fault spec token {token!r}: expected SITE=RATE"
                )
            key, _, value = token.partition("=")
            key = key.strip()
            try:
                if key == "seed":
                    seed = int(value)
                elif key == "stall_s":
                    stall_s = float(value)
                else:
                    rates[key] = float(value)
            except ValueError as exc:
                raise BenchmarkError(
                    f"bad fault spec value {token!r}: {exc}"
                ) from exc
        return cls(rates=tuple(sorted(rates.items())), seed=seed, stall_s=stall_s)

    def describe(self) -> str:
        parts = [f"{site}={rate:g}" for site, rate in self.rates]
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


class FaultPlan:
    """Executable fault schedule derived from a :class:`FaultSpec`.

    Stateless and thread-safe: every decision is a pure function of
    ``(seed, site, point_key, attempt)``, so one plan is shared by all
    worker engines of a parallel sweep.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._rates: Mapping[str, float] = dict(spec.rates)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        return cls(FaultSpec.parse(text))

    # -- decisions ---------------------------------------------------------------

    def _draw(self, site: str, point_key: str, attempt: int) -> float:
        payload = f"{self.spec.seed}\x1f{site}\x1f{attempt}\x1f{point_key}"
        digest = hashlib.sha256(payload.encode()).digest()
        derived = int.from_bytes(digest[:8], "little")
        return float(make_rng(derived).random())

    def should_fire(self, site: str, point_key: str, attempt: int) -> bool:
        """Does ``site`` fault at this point/attempt? Order-independent."""
        rate = self._rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._draw(site, point_key, attempt) < rate

    # -- effects -----------------------------------------------------------------

    def check(self, site: str, point_key: str, attempt: int) -> None:
        """Raise the site's transient error if the fault fires."""
        if not self.should_fire(site, point_key, attempt):
            return
        note = f"injected {site} fault (attempt {attempt})"
        if site == "build":
            raise InjectedBuildFault(
                "transient toolchain failure", device="<injected>", log=note
            )
        if site == "launch":
            raise InjectedLaunchFault(f"flaky kernel launch: {note}")
        raise InjectedFault(note)

    def corrupt_readback(
        self,
        point_key: str,
        attempt: int,
        arrays: "Mapping[str, np.ndarray] | np.ndarray",
    ) -> bool:
        """Flip one word of the readback if the fault fires.

        Accepts either the observed-array mapping of the device-stream
        path or the single destination array of the host-stream path;
        returns whether corruption was injected (the caller converts
        the resulting validation failure into a transient error).
        """
        if not self.should_fire("readback", point_key, attempt):
            return False
        self._flip_word("corrupt", point_key, attempt, arrays)
        return True

    def corrupt_verify(
        self,
        point_key: str,
        attempt: int,
        arrays: "Mapping[str, np.ndarray] | np.ndarray",
    ) -> bool:
        """Flip one word of the verifier's differential outputs.

        Models a miscompile: the recompiled reference execution the
        verify stage compares against disagrees with the device, and
        the verifier must report a ``verify_mismatch`` — permanently,
        since the same wrong code would come back on every retry.
        Returns whether corruption was injected.
        """
        if not self.should_fire("verify", point_key, attempt):
            return False
        self._flip_word("verify-corrupt", point_key, attempt, arrays)
        return True

    def corrupt_vectorize(
        self,
        point_key: str,
        attempt: int,
        arrays: "Mapping[str, np.ndarray] | np.ndarray",
    ) -> bool:
        """Flip one word of the *observed* arrays after validation.

        Models an array-lane miscompile below the STREAM validation
        tolerance: the engine applies this strictly after
        ``validate_solution`` passed and before the verify stage runs,
        so the only detector is strict differential verification —
        which must classify the point as a permanent
        ``verify_mismatch``, identically on every scheduler backend.
        Returns whether corruption was injected.
        """
        if not self.should_fire("vectorize", point_key, attempt):
            return False
        self._flip_word("vectorize-corrupt", point_key, attempt, arrays)
        return True

    def _flip_word(
        self,
        label: str,
        point_key: str,
        attempt: int,
        arrays: "Mapping[str, np.ndarray] | np.ndarray",
    ) -> None:
        """XOR one deterministically chosen byte of one array."""
        if isinstance(arrays, np.ndarray):
            victims = [arrays]
        else:
            victims = [arrays[name] for name in sorted(arrays)]
        rng = make_rng(
            int.from_bytes(
                hashlib.sha256(
                    f"{self.spec.seed}\x1f{label}\x1f{attempt}\x1f{point_key}".encode()
                ).digest()[:8],
                "little",
            )
        )
        victim = victims[int(rng.integers(len(victims)))]
        flat = victim.reshape(-1).view(np.uint8)
        if flat.size:
            flat[int(rng.integers(flat.size))] ^= 0xFF

    def torn_write(self, point_key: str, attempt: int, nbytes: int) -> int | None:
        """How many bytes of an ``nbytes``-byte journal record survive a tear.

        Returns ``None`` when the ``journal_write`` fault does not fire
        at this ``(point_key, sequence-number)`` draw, otherwise a
        deterministic prefix length in ``[1, nbytes - 1]`` — the torn
        record is always *partial*: never empty (that would be
        indistinguishable from "not written"), never whole (that would
        be a clean append). Records of fewer than 2 bytes cannot tear.
        """
        if nbytes < 2 or not self.should_fire("journal_write", point_key, attempt):
            return None
        rng = make_rng(
            int.from_bytes(
                hashlib.sha256(
                    f"{self.spec.seed}\x1ftear\x1f{attempt}\x1f{point_key}".encode()
                ).digest()[:8],
                "little",
            )
        )
        return 1 + int(rng.integers(nbytes - 1))

    def stall(
        self,
        point_key: str,
        attempt: int,
        checkpoint: Callable[[], None] | None = None,
    ) -> float:
        """Hang the point (bounded by ``stall_s``) if the fault fires.

        Sleeps in short slices, calling ``checkpoint`` between them so
        a watchdog budget can cancel the stall by raising
        :class:`~repro.errors.PointTimeoutError`; returns the wall
        seconds actually stalled.
        """
        if not self.should_fire("stall", point_key, attempt):
            return 0.0
        deadline = time.monotonic() + self.spec.stall_s
        t0 = time.monotonic()
        while True:
            if checkpoint is not None:
                checkpoint()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return time.monotonic() - t0
            time.sleep(min(0.01, remaining))
