"""Performance-regression harness for the fast-lane layer.

``mp-stream bench`` runs the microbenchmarks in
:mod:`repro.perf.bench`, writes a schema-versioned ``BENCH_PERF.json``
(:mod:`repro.perf.report`) and compares against a previous report so
the vectorized fast lanes — whose *correctness* the differential test
oracles pin — can never silently lose their *speed* either.
"""

from __future__ import annotations

from .bench import BENCHMARKS, run_benchmarks
from .report import (
    BENCH_SCHEMA,
    MIN_SPEEDUP,
    compare,
    environment,
    format_report,
    load_report,
    machine_fingerprint,
    save_report,
)

__all__ = [
    "BENCHMARKS",
    "run_benchmarks",
    "BENCH_SCHEMA",
    "MIN_SPEEDUP",
    "compare",
    "environment",
    "format_report",
    "load_report",
    "machine_fingerprint",
    "save_report",
]
