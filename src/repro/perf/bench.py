"""Fast-lane microbenchmarks: time the hot paths, pin the speedups.

Each benchmark times a *fast lane* against its retained *scalar oracle*
on identical inputs — the same pairs the differential equivalence suite
(`tests/test_fastpath_equivalence.py`) proves bit-for-bit identical —
and reports median/IQR wall times plus the speedup ratio. The ratio is
the machine-portable number CI gates on; absolute throughput is only
compared between identical machines (see :mod:`repro.perf.report`).

Benchmarks:

* ``cache_sim`` — exact set-associative LRU simulation of a two-pass
  unit-stride STREAM walk: scalar per-access loop vs
  :meth:`~repro.memsim.cache.Cache.access_batch`.
* ``coalesce`` — warp coalescing + burst inference over thousands of
  warp-sized windows: per-window calls vs the ``*_batch`` stack forms.
* ``interp`` — generated triad kernel execution: tree-walking
  :class:`~repro.oclc.interp.KernelInterpreter` vs the
  compiled-to-closures :class:`~repro.oclc.compile.CompiledKernel`.
* ``ndrange`` — the whole-NDRange array lane: compiled-to-closures
  scalar execution vs :class:`~repro.oclc.vectorize.VectorKernel`
  across array sizes, with an interpreter reference leg at the
  smallest size. The gated ratio is vectorized-vs-compiled at the
  largest size, where the per-element Python overhead of the scalar
  lane dominates.
* ``engine_stages`` — one engine point end to end, with the per-stage
  split (generate/compile/plan/execute) from ``detail['engine']``.
* ``sweep_throughput`` — a small cartesian sweep, reported as
  points/second.
* ``search_efficiency`` — multi-fidelity search vs the exhaustive sweep
  on the same grid; the gated ratio is grid points per measured
  evaluation, and the search must find the sweep's optimum.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Mapping

import numpy as np

from ..core import BenchmarkRunner, ParameterSweep, TuningParameters, explore
from ..core.generator import generate
from ..core.kernels import KERNELS, SCALAR_Q, initial_arrays
from ..core.params import DataType, KernelName
from ..errors import InvalidValueError
from ..memsim import (
    Cache,
    CacheConfig,
    coalesce_fixed_groups,
    coalesce_fixed_groups_batch,
    coalesce_sequential,
    coalesce_sequential_batch,
)
from ..obs import trace as obs_trace
from ..oclc import compile_kernel, compile_source_cached, vectorize_kernel
from ..oclc.interp import BufferArg, KernelInterpreter
from .report import BENCH_SCHEMA, environment

__all__ = ["BENCHMARKS", "run_benchmarks"]


def _sample(fn: Callable[[], object], repeats: int) -> list[float]:
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return samples


def _stats(samples: Iterable[float]) -> dict[str, object]:
    arr = np.sort(np.asarray(list(samples), dtype=np.float64))
    q1, q3 = np.percentile(arr, [25, 75])
    return {
        "median_s": float(np.median(arr)),
        "min_s": float(arr[0]),
        "iqr_s": float(q3 - q1),
        "repeats": int(arr.size),
    }


def _paired(
    scalar: Callable[[], object],
    fast: Callable[[], object],
    *,
    scalar_repeats: int,
    fast_repeats: int,
) -> dict[str, object]:
    """Time a fast lane against its scalar oracle.

    Both lanes are warmed once, then sampled *interleaved* so a load
    spike hits them alike. The gated speedup ratio uses each lane's
    best run (the least-noise estimate of achievable cost, as
    ``timeit`` recommends); the medians/IQR land in the report for
    absolute-throughput tracking.
    """
    scalar()
    fast()
    scalar_samples: list[float] = []
    fast_samples: list[float] = []
    rounds = max(scalar_repeats, fast_repeats)
    for i in range(rounds):
        if i < scalar_repeats:
            scalar_samples.extend(_sample(scalar, 1))
        if i < fast_repeats:
            fast_samples.extend(_sample(fast, 1))
    scalar_stats = _stats(scalar_samples)
    fast_stats = _stats(fast_samples)
    return {
        "wall_s": fast_stats,
        "scalar_s": scalar_stats,
        "speedup": scalar_stats["min_s"] / fast_stats["min_s"],
    }


# -- cache simulation ---------------------------------------------------------


def bench_cache_sim(quick: bool) -> dict[str, object]:
    n = 120_000 if quick else 240_000
    passes = 2
    cfg = CacheConfig(capacity_bytes=64 * 1024, line_bytes=64, ways=8)
    # the paper's core pattern: a unit-stride multi-pass STREAM walk
    # over 4-byte (float) words
    trace = np.tile(np.arange(n // passes, dtype=np.int64) * 4, passes)

    entry = _paired(
        lambda: Cache(cfg).access_scalar(trace),
        lambda: Cache(cfg).access_batch(trace),
        scalar_repeats=3 if quick else 5,
        fast_repeats=5 if quick else 9,
    )
    entry["throughput"] = {
        "value": trace.size / entry["wall_s"]["median_s"],
        "unit": "accesses/s",
    }
    entry["detail"] = {"accesses": int(trace.size), "num_sets": cfg.num_sets}
    return entry


# -- coalescing ----------------------------------------------------------------


def bench_coalesce(quick: bool) -> dict[str, object]:
    rows, n = (1024 if quick else 4096), 32
    rng = np.random.default_rng(1234)
    stack = np.asarray(rng.integers(0, 1 << 20, (rows, n)) * 4, dtype=np.int64)

    def scalar() -> None:
        for row in stack:
            coalesce_fixed_groups(row, 4)
            coalesce_sequential(row, 4)

    def fast() -> None:
        coalesce_fixed_groups_batch(stack, 4)
        coalesce_sequential_batch(stack, 4)

    entry = _paired(
        scalar, fast, scalar_repeats=3 if quick else 5, fast_repeats=5 if quick else 9
    )
    entry["throughput"] = {
        "value": rows / entry["wall_s"]["median_s"],
        "unit": "windows/s",
    }
    entry["detail"] = {"windows": rows, "window_accesses": n}
    return entry


# -- kernel execution ----------------------------------------------------------


def bench_interp(quick: bool) -> dict[str, object]:
    words = 2048 if quick else 4096
    params = TuningParameters(
        kernel=KernelName.TRIAD,
        dtype=DataType.FLOAT,
        array_bytes=words * 4,
        vector_width=4,
    )
    gen = generate(params)
    checked = compile_source_cached(
        gen.source, {k: str(v) for k, v in gen.defines.items()}
    )
    initial = initial_arrays(params.word_count, params.dtype)
    spec = KERNELS[params.kernel]

    def make_call() -> dict[str, object]:
        arrays = {name: initial[name].copy() for name in ("a", "b", "c")}
        call: dict[str, object] = {
            name: BufferArg(arrays[name]) for name in (*spec.reads, spec.writes)
        }
        if spec.uses_scalar:
            call["q"] = SCALAR_Q
        return call

    interp = KernelInterpreter(checked, gen.kernel_name)
    compiled = compile_kernel(checked, gen.kernel_name)
    call = make_call()

    entry = _paired(
        lambda: interp.run(gen.global_size, call, gen.local_size),
        lambda: compiled.run(gen.global_size, call, gen.local_size),
        scalar_repeats=2 if quick else 3,
        fast_repeats=20 if quick else 50,
    )
    entry["throughput"] = {
        "value": words / entry["wall_s"]["median_s"],
        "unit": "words/s",
    }
    entry["detail"] = {"kernel": "triad", "words": words, "vector_width": 4}
    return entry


def bench_ndrange(quick: bool) -> dict[str, object]:
    """Three execution drivers over one kernel, sized until it hurts.

    The gated speedup is the array lane against the compiled scalar
    lane at 1M words — the regime the engine actually batches, and
    where the closure lane's per-slice Python overhead has fully
    amortised away on the array side. Quick mode keeps all three sizes
    (the compiled lane still only costs ~20ms at 1M) and trims
    repeats. The interpreter leg runs once at the smallest size purely
    as a scale reference; it is ~1000x off the pace and timing it at
    1M words would dominate the whole suite.
    """
    sizes = [1024, 65_536, 1_048_576]

    def point(words: int) -> TuningParameters:
        return TuningParameters(
            kernel=KernelName.TRIAD,
            dtype=DataType.FLOAT,
            array_bytes=words * 4,
            vector_width=4,
        )

    def lanes(words: int):
        params = point(words)
        gen = generate(params)
        checked = compile_source_cached(
            gen.source, {k: str(v) for k, v in gen.defines.items()}
        )
        initial = initial_arrays(params.word_count, params.dtype)
        spec = KERNELS[params.kernel]
        arrays = {name: initial[name].copy() for name in ("a", "b", "c")}
        call: dict[str, object] = {
            name: BufferArg(arrays[name]) for name in (*spec.reads, spec.writes)
        }
        if spec.uses_scalar:
            call["q"] = SCALAR_Q
        # kernels are built once and the array lane's slice plan is
        # cached across launches — exactly how the queue drives them
        compiled = compile_kernel(checked, gen.kernel_name)
        vectorized = vectorize_kernel(checked, gen.kernel_name)
        interp = KernelInterpreter(checked, gen.kernel_name)
        run = lambda kernel: kernel.run(gen.global_size, call, gen.local_size)  # noqa: E731
        return (
            lambda: run(compiled),
            lambda: run(vectorized),
            lambda: run(interp),
        )

    per_size: dict[str, dict[str, float]] = {}
    entry: dict[str, object] = {}
    for words in sizes:
        compiled, vectorized, interp = lanes(words)
        paired = _paired(
            compiled,
            vectorized,
            scalar_repeats=2 if quick else 3,
            fast_repeats=10 if quick else 20,
        )
        per_size[str(words)] = {
            "compiled_min_s": paired["scalar_s"]["min_s"],  # type: ignore[index]
            "vectorized_min_s": paired["wall_s"]["min_s"],  # type: ignore[index]
            "speedup": round(paired["speedup"], 2),  # type: ignore[arg-type]
        }
        if words == sizes[-1]:
            entry = paired  # the gated ratio: largest size
        if words == sizes[0]:
            per_size[str(words)]["interp_min_s"] = min(_sample(interp, 2))

    entry["throughput"] = {
        "value": sizes[-1] / entry["wall_s"]["min_s"],  # type: ignore[index]
        "unit": "words/s",
    }
    entry["detail"] = {
        "kernel": "triad",
        "vector_width": 4,
        "sizes_words": sizes,
        "per_size": per_size,
    }
    return entry


# -- engine / end-to-end -------------------------------------------------------


def bench_engine_stages(quick: bool) -> dict[str, object]:
    params = TuningParameters(
        kernel=KernelName.TRIAD,
        dtype=DataType.FLOAT,
        array_bytes=(64 if quick else 256) * 1024,
        vector_width=4,
    )

    stage_samples: dict[str, list[float]] = {}
    walls: list[float] = []

    def one_point() -> None:
        runner = BenchmarkRunner("cpu", ntimes=2)
        t0 = time.perf_counter()
        result = runner.run(params)
        walls.append(time.perf_counter() - t0)
        for stage, seconds in result.detail["engine"]["stage_s"].items():
            stage_samples.setdefault(stage, []).append(seconds)

    repeats = 3 if quick else 5
    for _ in range(repeats):
        one_point()

    return {
        "wall_s": _stats(walls),
        "detail": {
            "stage_s": {
                stage: _stats(samples) for stage, samples in sorted(stage_samples.items())
            }
        },
    }


def bench_sweep_throughput(quick: bool) -> dict[str, object]:
    base = TuningParameters(
        kernel=KernelName.TRIAD,
        dtype=DataType.FLOAT,
        array_bytes=64 * 1024,
        vector_width=1,
    )
    axes: dict[str, list[object]] = {"vector_width": [1, 2, 4]}
    if not quick:
        axes["kernel"] = [KernelName.COPY, KernelName.TRIAD]
    sweep = ParameterSweep(base=base, axes=axes)

    walls: list[float] = []

    def one_sweep() -> None:
        runner = BenchmarkRunner("cpu", ntimes=2)
        t0 = time.perf_counter()
        results = explore(runner, sweep)
        walls.append(time.perf_counter() - t0)
        if any(not r.ok for r in results):
            raise InvalidValueError("sweep benchmark produced failing points")

    repeats = 2 if quick else 3
    for _ in range(repeats):
        one_sweep()

    entry: dict[str, object] = {"wall_s": _stats(walls)}
    entry["throughput"] = {
        "value": len(sweep) / entry["wall_s"]["median_s"],  # type: ignore[index]
        "unit": "points/s",
    }
    entry["detail"] = {"points": len(sweep)}
    return entry


# -- model-guided search -------------------------------------------------------


def bench_search_efficiency(quick: bool) -> dict[str, object]:
    """Multi-fidelity search vs the exhaustive sweep it replaces.

    Runs :func:`~repro.core.search.multifidelity_search` and
    :func:`~repro.core.sweep.explore` over the same grid on a shared
    runner (both ride the same caches) and reports both wall times —
    but the *gated* ``speedup`` is the deterministic evaluation ratio
    ``pool / spent``: how many grid points each measured evaluation
    stood in for. That number cannot be moved by machine noise, only by
    a searcher change that starts spending more budget. The search must
    also find the exhaustive optimum (same fingerprint or equal
    bandwidth), else the benchmark raises — a faster search that finds
    a worse point is a regression, not a win.
    """
    from ..core import LoopManagement, multifidelity_search

    base = TuningParameters(
        kernel=KernelName.TRIAD,
        dtype=DataType.FLOAT,
        array_bytes=64 * 1024,
    )
    axes: dict[str, list[object]] = {
        "kernel": [KernelName.COPY, KernelName.TRIAD],
        "loop": list(LoopManagement),
        "vector_width": [1, 2, 4, 8, 16],
        "unroll": [1, 2, 4],
    }
    budget = 6
    sweep = ParameterSweep(base=base, axes=axes)

    search_walls: list[float] = []
    sweep_walls: list[float] = []
    spent = pool = 0

    repeats = 2 if quick else 3
    for _ in range(repeats):
        runner = BenchmarkRunner("cpu", ntimes=1)
        t0 = time.perf_counter()
        out = multifidelity_search(runner, axes, seed=base, budget=budget)
        search_walls.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        grid = explore(runner, sweep)
        sweep_walls.append(time.perf_counter() - t0)
        spent, pool = out.spent, out.pool_size
        grid_best = grid.best()
        if grid_best is None or not out.best.ok:
            raise InvalidValueError("search benchmark produced failing points")
        same = out.best.fingerprint() == grid_best.fingerprint()
        if not same and out.best.bandwidth_gbs < grid_best.bandwidth_gbs * (
            1 - 1e-6
        ):
            raise InvalidValueError(
                "search missed the exhaustive optimum: "
                f"{out.best.params.describe()} "
                f"({out.best.bandwidth_gbs:.6f} GB/s) vs "
                f"{grid_best.params.describe()} "
                f"({grid_best.bandwidth_gbs:.6f} GB/s)"
            )

    entry: dict[str, object] = {
        "wall_s": _stats(search_walls),
        "scalar_s": _stats(sweep_walls),
        # grid points per measured evaluation — deterministic, gated
        "speedup": pool / max(1, spent),
    }
    entry["throughput"] = {
        "value": spent / entry["wall_s"]["median_s"],  # type: ignore[index]
        "unit": "evals/s",
    }
    entry["detail"] = {
        "pool": pool,
        "grid": len(sweep),
        "budget": budget,
        "spent": spent,
    }
    return entry


# -- observability overhead ----------------------------------------------------


def bench_obs_overhead(quick: bool) -> dict[str, object]:
    """The disabled-path cost of the obs probes, in ns per probe.

    The whole obs contract rests on probes being ~free when no sink is
    installed (one module-global load, then return) — every engine
    stage, cache lookup and memsim access pays this even on campaigns
    that never pass ``--trace``/``--metrics``. This pins that cost so
    a refactor cannot silently put, say, string formatting or object
    construction on the disabled path; :data:`repro.perf.report.MAX_PROBE_NS`
    is the gated ceiling.
    """
    from ..obs import metrics as obs_metrics
    from ..obs import trace as obs_trace

    n = 50_000 if quick else 200_000
    repeats = 3 if quick else 5

    def loop_count() -> None:
        count = obs_metrics.count
        for _ in range(n):
            count("bench.probe")

    def loop_observe() -> None:
        observe = obs_metrics.observe
        for _ in range(n):
            observe("bench.probe", 1.0)

    def loop_span() -> None:
        span = obs_trace.span
        for _ in range(n):
            with span("bench.probe", "bench"):
                pass

    probes = {"count": loop_count, "observe": loop_observe, "span": loop_span}
    with obs_metrics.use_registry(None), obs_trace.use_tracer(None):
        for fn in probes.values():  # warm
            fn()
        samples = {
            name: _sample(fn, repeats) for name, fn in probes.items()
        }

    ns_per_probe = {
        name: min(walls) / n * 1e9 for name, walls in samples.items()
    }
    totals = [sum(walls[i] for walls in samples.values()) for i in range(repeats)]
    return {
        "wall_s": _stats(totals),
        "detail": {
            "probes": n,
            "ns_per_probe": {k: round(v, 2) for k, v in sorted(ns_per_probe.items())},
        },
    }


BENCHMARKS: dict[str, Callable[[bool], dict[str, object]]] = {
    "cache_sim": bench_cache_sim,
    "coalesce": bench_coalesce,
    "interp": bench_interp,
    "ndrange": bench_ndrange,
    "engine_stages": bench_engine_stages,
    "sweep_throughput": bench_sweep_throughput,
    "search_efficiency": bench_search_efficiency,
    "obs_overhead": bench_obs_overhead,
}


def run_benchmarks(
    *, quick: bool = False, only: Iterable[str] | None = None
) -> dict[str, object]:
    """Run the selected benchmarks; returns a schema-versioned report."""
    names = list(only) if only else list(BENCHMARKS)
    unknown = [n for n in names if n not in BENCHMARKS]
    if unknown:
        raise InvalidValueError(
            f"unknown benchmark(s) {unknown}; have {sorted(BENCHMARKS)}"
        )
    benchmarks: dict[str, Mapping[str, object]] = {}
    for name in names:
        with obs_trace.span(f"bench.{name}", "perf"):
            benchmarks[name] = BENCHMARKS[name](quick)
    return {
        "schema": BENCH_SCHEMA,
        "quick": bool(quick),
        "env": environment(),
        "benchmarks": benchmarks,
    }
