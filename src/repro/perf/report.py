"""Schema-versioned performance reports and regression comparison.

``BENCH_PERF.json`` is the harness's artifact: one file per run with
medians/IQR per microbenchmark plus environment provenance, written
byte-stable (sorted keys) so two runs diff cleanly. :func:`compare`
gates a current report against a previous one:

* **speedup ratios** (fast lane over scalar oracle on the same machine,
  same run) are machine-portable and are always gated — both against
  the baseline's ratio with a configurable threshold, and against the
  hard :data:`MIN_SPEEDUP` floors the acceptance criteria pin;
* **absolute throughput** is only compared when the two reports carry
  the same machine fingerprint, so a laptop baseline never fails CI.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path
from typing import Mapping

import numpy as np

from ..errors import InvalidValueError

__all__ = [
    "BENCH_SCHEMA",
    "MIN_SPEEDUP",
    "MAX_PROBE_NS",
    "environment",
    "machine_fingerprint",
    "save_report",
    "load_report",
    "compare",
    "format_report",
]

#: bump when the report layout changes incompatibly
BENCH_SCHEMA = 1

#: hard speedup floors (fast lane vs scalar oracle); a report whose
#: ratio drops below these fails compare() regardless of the baseline
MIN_SPEEDUP: dict[str, float] = {
    "cache_sim": 5.0,
    "interp": 5.0,
    # the whole-NDRange array lane must beat the compiled scalar lane
    # by an order of magnitude at its largest size, or a third
    # execution driver is not paying for its complexity
    "ndrange": 10.0,
    # multi-fidelity search: grid points per measured evaluation
    # (pool / spent, a deterministic count — no machine noise). The
    # acceptance criterion is the paper grid's optimum at <10% of the
    # grid, i.e. each measured evaluation must stand in for >= 10 grid
    # points; the benchmark itself also asserts optimum parity
    "search_efficiency": 10.0,
}

#: hard ceiling on the *disabled*-path cost of one obs probe
#: (``obs_overhead`` reports ``detail.ns_per_probe``). A disabled probe
#: is one module-global load and a return — microseconds per probe
#: means something expensive crept onto the path every engine stage
#: pays even without ``--trace``/``--metrics``. Generous (~10x the
#: measured CPython cost) so CI noise never trips it.
MAX_PROBE_NS = 5000.0


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def environment() -> dict[str, object]:
    """Provenance block: enough to judge report comparability."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "git_sha": _git_sha(),
        "argv_quick": "--quick" in sys.argv,
    }


def machine_fingerprint(env: Mapping[str, object]) -> tuple:
    """What must match for absolute timings to be comparable."""
    return (env.get("platform"), env.get("machine"), env.get("cpu_count"))


def save_report(report: Mapping[str, object], path: str | Path) -> Path:
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return path


def load_report(path: str | Path) -> dict[str, object]:
    report = json.loads(Path(path).read_text())
    schema = report.get("schema")
    if schema != BENCH_SCHEMA:
        raise InvalidValueError(
            f"report {path} has schema {schema!r}; expected {BENCH_SCHEMA}"
        )
    return report


def compare(
    current: Mapping[str, object],
    baseline: Mapping[str, object] | None,
    *,
    threshold: float = 0.25,
) -> list[str]:
    """Regressions of ``current`` vs ``baseline``; empty means pass.

    ``threshold`` is the tolerated fractional drop (0.25 = 25%).
    """
    if not 0 <= threshold < 1:
        raise InvalidValueError("threshold must be in [0, 1)")
    problems: list[str] = []
    cur_benches: Mapping[str, dict] = current.get("benchmarks", {})  # type: ignore[assignment]

    for name, floor in MIN_SPEEDUP.items():
        bench = cur_benches.get(name)
        if bench is None or "speedup" not in bench:
            continue
        if bench["speedup"] < floor:
            problems.append(
                f"{name}: speedup {bench['speedup']:.2f}x is below the "
                f"required {floor:g}x floor"
            )

    obs_bench = cur_benches.get("obs_overhead")
    if obs_bench is not None:
        probes: Mapping[str, float] = obs_bench.get("detail", {}).get(
            "ns_per_probe", {}
        )
        for probe, ns in sorted(probes.items()):
            if ns > MAX_PROBE_NS:
                problems.append(
                    f"obs_overhead: disabled {probe}() costs {ns:.0f} ns/probe, "
                    f"above the {MAX_PROBE_NS:g} ns ceiling — something "
                    f"expensive is on the no-sink path"
                )

    if baseline is None:
        return problems

    base_benches: Mapping[str, dict] = baseline.get("benchmarks", {})  # type: ignore[assignment]
    same_machine = machine_fingerprint(
        current.get("env", {})  # type: ignore[arg-type]
    ) == machine_fingerprint(baseline.get("env", {}))  # type: ignore[arg-type]

    for name, bench in sorted(cur_benches.items()):
        base = base_benches.get(name)
        if base is None:
            continue
        if "speedup" in bench and "speedup" in base:
            allowed = base["speedup"] * (1 - threshold)
            if bench["speedup"] < allowed:
                problems.append(
                    f"{name}: speedup regressed {base['speedup']:.2f}x -> "
                    f"{bench['speedup']:.2f}x (allowed >= {allowed:.2f}x)"
                )
        if same_machine and "throughput" in bench and "throughput" in base:
            cur_v = bench["throughput"]["value"]
            base_v = base["throughput"]["value"]
            allowed = base_v * (1 - threshold)
            if cur_v < allowed:
                unit = bench["throughput"].get("unit", "")
                problems.append(
                    f"{name}: throughput regressed {base_v:.3g} -> "
                    f"{cur_v:.3g} {unit} (allowed >= {allowed:.3g})"
                )
    return problems


def format_report(report: Mapping[str, object]) -> str:
    """Human-readable summary table of one report."""
    lines = []
    env = report.get("env", {})
    lines.append(
        f"bench schema {report.get('schema')} · python {env.get('python')} · "
        f"numpy {env.get('numpy')} · {env.get('git_sha')}"
    )
    benches: Mapping[str, dict] = report.get("benchmarks", {})  # type: ignore[assignment]
    width = max((len(n) for n in benches), default=4)
    for name, bench in sorted(benches.items()):
        wall = bench.get("wall_s", {})
        parts = [f"{name:<{width}}  {wall.get('median_s', 0) * 1e3:9.3f} ms"]
        iqr = wall.get("iqr_s")
        if iqr is not None:
            parts.append(f"±{iqr * 1e3:.3f}")
        if "speedup" in bench:
            parts.append(f"{bench['speedup']:6.1f}x vs scalar")
        if "throughput" in bench:
            tp = bench["throughput"]
            parts.append(f"{tp['value']:.3g} {tp['unit']}")
        lines.append("  ".join(parts))
    return "\n".join(lines)
