"""A GPU-STREAM-style baseline (Deakin & McIntosh-Smith, SC'15 poster).

The paper credits GPU-STREAM as the starting point for MP-STREAM
("This open-source OpenCL benchmark was a useful resource in developing
our FPGA-oriented version") — so the reproduction carries an
independent implementation of it as the baseline comparator.
"""

from __future__ import annotations

from .runner import GpuStreamResult, run_gpu_stream

__all__ = ["GpuStreamResult", "run_gpu_stream"]
