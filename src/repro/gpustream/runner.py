"""GPU-STREAM benchmark logic on the simulated OpenCL stack.

Faithful to the original's discipline, which differs from both classic
STREAM and MP-STREAM in ways that matter for cross-checking:

* **NDRange-only, double precision** kernels — the natural GPU coding
  style (this is exactly the style the paper shows is *wrong* for
  FPGAs);
* each timed iteration runs the whole sequence COPY, MUL, ADD, TRIAD,
  and the arrays *evolve* across iterations (c=a; b=s*c; c=a+b;
  a=b+s*c), so validation checks the final values against a scalar
  recurrence rather than a single-step reference;
* per-kernel times are collected across iterations; the report is the
  best rate per kernel, GB/s decimal.

Because it shares the runtime and device models with MP-STREAM, its
numbers must agree with MP-STREAM's NDRange/double configuration — the
test suite asserts that, which cross-validates both host
implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import BenchmarkError, ValidationError
from ..ocl import CommandQueue, Context, Program
from ..ocl.platform import Device, find_device
from ..units import MIB, bandwidth_gbs

__all__ = ["GpuStreamResult", "run_gpu_stream"]

_KERNEL_SOURCE = """
__kernel void copy(__global const double *a, __global double *c) {
    size_t i = get_global_id(0);
    c[i] = a[i];
}

__kernel void mul(__global double *b, __global const double *c,
                  const double scalar) {
    size_t i = get_global_id(0);
    b[i] = scalar * c[i];
}

__kernel void add(__global const double *a, __global const double *b,
                  __global double *c) {
    size_t i = get_global_id(0);
    c[i] = a[i] + b[i];
}

__kernel void triad(__global double *a, __global const double *b,
                    __global const double *c, const double scalar) {
    size_t i = get_global_id(0);
    a[i] = b[i] + scalar * c[i];
}

__kernel void dot_partial(__global const double *a, __global const double *b,
                          __global double *p) {
    size_t i = get_global_id(0);
    p[i] = a[i] * b[i];
}
"""

#: GPU-STREAM's traditional initial values and scalar
_INIT_A, _INIT_B, _INIT_C = 1.0, 2.0, 0.0
_SCALAR = 3.0

#: bytes moved per element, per kernel (STREAM counting; DOT reads two
#: arrays -- BabelStream, GPU-STREAM's successor, counts it as 2)
_BYTES_FACTOR = {"copy": 2, "mul": 2, "add": 3, "triad": 3, "dot": 2}


@dataclass(frozen=True)
class GpuStreamResult:
    """Per-kernel best/average rates from one GPU-STREAM run."""

    kernel: str
    array_bytes: int
    times: tuple[float, ...]
    moved_bytes: int

    @property
    def min_time(self) -> float:
        return min(self.times)

    @property
    def avg_time(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def bandwidth_gbs(self) -> float:
        return bandwidth_gbs(self.moved_bytes, self.min_time)


def _expected_final(ntimes: int) -> tuple[float, float, float]:
    """Evolve the scalar recurrence the kernel sequence implements."""
    a, b, c = _INIT_A, _INIT_B, _INIT_C
    for _ in range(ntimes):
        c = a
        b = _SCALAR * c
        c = a + b
        a = b + _SCALAR * c
    return a, b, c


def run_gpu_stream(
    device: Device | str = "gpu",
    *,
    array_bytes: int = 32 * MIB,
    ntimes: int = 10,
    validate: bool = True,
    with_dot: bool = False,
) -> dict[str, GpuStreamResult]:
    """Run the GPU-STREAM sequence on a (simulated) device.

    Returns per-kernel results keyed by GPU-STREAM's kernel names
    (``copy``/``mul``/``add``/``triad``). ``with_dot=True`` adds the
    DOT kernel BabelStream (GPU-STREAM's successor) introduced: the
    device computes elementwise products into a partial buffer (real
    implementations reduce per work-group in local memory; the final
    host-side reduction is excluded from the timing either way).
    """
    if isinstance(device, str):
        device = find_device(device)
    if ntimes < 1:
        raise BenchmarkError(f"ntimes must be >= 1, got {ntimes}")
    n = array_bytes // 8
    if n < 1:
        raise BenchmarkError("array smaller than one double")
    array_bytes = n * 8

    ctx = Context(device)
    queue = CommandQueue(ctx, device)
    program = Program(ctx, _KERNEL_SOURCE).build()

    host = {
        "a": np.full(n, _INIT_A),
        "b": np.full(n, _INIT_B),
        "c": np.full(n, _INIT_C),
    }
    bufs = {name: ctx.create_buffer(hostbuf=arr) for name, arr in host.items()}
    for buf in bufs.values():
        buf.residency = "device"

    kernels = {
        "copy": program.create_kernel("copy").set_args(a=bufs["a"], c=bufs["c"]),
        "mul": program.create_kernel("mul").set_args(
            b=bufs["b"], c=bufs["c"], scalar=_SCALAR
        ),
        "add": program.create_kernel("add").set_args(
            a=bufs["a"], b=bufs["b"], c=bufs["c"]
        ),
        "triad": program.create_kernel("triad").set_args(
            a=bufs["a"], b=bufs["b"], c=bufs["c"], scalar=_SCALAR
        ),
    }

    partial = None
    if with_dot:
        partial = ctx.create_buffer(size=array_bytes)
        partial.residency = "device"
        kernels["dot"] = program.create_kernel("dot_partial").set_args(
            a=bufs["a"], b=bufs["b"], p=partial
        )

    times: dict[str, list[float]] = {name: [] for name in kernels}
    for _ in range(ntimes):
        for name, kernel in kernels.items():
            event = queue.enqueue_nd_range_kernel(kernel, (n,))
            times[name].append(event.latency)

    if validate and with_dot:
        assert partial is not None
        got = float(np.sum(partial.view(np.float64)))
        want = float(
            np.dot(bufs["a"].view(np.float64), bufs["b"].view(np.float64))
        )
        if want and abs(got - want) / abs(want) > 1e-8:
            raise ValidationError(
                f"GPU-STREAM dot drifted: {got!r} vs {want!r}"
            )
    if validate:
        want_a, want_b, want_c = _expected_final(ntimes)
        for name, want in (("a", want_a), ("b", want_b), ("c", want_c)):
            got = bufs[name].view(np.float64)
            err = np.max(np.abs(got - want) / abs(want))
            if err > 1e-8:
                raise ValidationError(
                    f"GPU-STREAM array {name!r} drifted: relative error {err:.2e}"
                )

    return {
        name: GpuStreamResult(
            kernel=name,
            array_bytes=array_bytes,
            times=tuple(ts),
            moved_bytes=array_bytes * _BYTES_FACTOR[name],
        )
        for name, ts in times.items()
    }
