"""Deterministic randomness helpers.

The simulation itself is deterministic; randomness only appears in
tests and example workload generators. Centralizing seeding keeps every
run reproducible: the same seed always produces the same generator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_SEED", "make_rng"]

DEFAULT_SEED = 0x5EED_2018


def make_rng(seed: int | None = None) -> np.random.Generator:
    """A PCG64 generator seeded deterministically (``None`` = package seed)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
