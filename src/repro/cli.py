"""The ``mp-stream`` command-line interface.

Mirrors the original benchmark's build-script flags::

    mp-stream devices
    mp-stream run --target aocl --kernel copy --size 4MiB --vec 8
    mp-stream sweep --target sdaccel --axis vector_width=1,2,4,8,16
    mp-stream figure fig1b
    mp-stream host-stream --size 64MiB
    mp-stream source --kernel triad --loop nested --vec 4
    mp-stream verify --grid small
"""

from __future__ import annotations

import argparse
import signal
import sys
from contextlib import contextmanager
from typing import Sequence

from . import figures, obs
from .core import (
    BACKENDS,
    AccessPattern,
    BenchmarkRunner,
    CampaignScheduler,
    DataType,
    FaultPlan,
    KernelName,
    LoopManagement,
    ParameterSweep,
    StreamLocus,
    SweepJournal,
    TuningParameters,
    Watchdog,
    ascii_chart,
    compact_journal,
    explore,
    failure_table,
    fsck_journal,
    generate,
    metrics_table,
    results_table,
    series_table,
    stream_table,
)
from .errors import ReproError
from .faults import FAULT_SITES
from .ocl.platform import get_platforms
from .units import format_bandwidth, format_size, parse_size

__all__ = ["main", "build_parser"]

#: exit status of a campaign drained by SIGTERM/SIGINT (the shell
#: convention for "terminated by signal", distinguishing a graceful
#: drain from both success (0) and usage errors (2))
EXIT_INTERRUPTED = 130

_FIGURES = {
    "fig1a": lambda: figures.fig1a_array_size(),
    "fig1b": lambda: figures.fig1b_vector_width(),
    "fig2": lambda: figures.fig2_contiguity(),
    "fig3": lambda: figures.fig3_loop_management(),
    "fig4a": lambda: figures.fig4a_all_kernels(),
    "fig4b": lambda: figures.fig4b_aocl_optimizations(),
    "pcie": lambda: figures.pcie_streams(),
    "unroll": lambda: figures.ablation_unroll(),
    "dtype": lambda: figures.ablation_dtype(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mp-stream",
        description="MP-STREAM: memory-performance design-space exploration "
        "on simulated heterogeneous targets",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("devices", help="list the simulated platforms and devices")

    run = sub.add_parser("run", help="run the benchmark at one parameter point")
    _add_point_args(run)
    _add_obs_args(run)
    run.add_argument("--all-kernels", action="store_true", help="run all four kernels")
    run.add_argument("--ntimes", type=int, default=5)
    run.add_argument(
        "--verify",
        action="store_true",
        help="differentially verify the output after the timed launches "
        "(mismatches fail the point as 'verify_mismatch')",
    )
    run.add_argument("--csv", metavar="PATH", help="append results to a CSV file")
    run.add_argument(
        "--save", metavar="PATH", help="append results to a JSONL history file"
    )

    sweep = sub.add_parser("sweep", help="cartesian design-space sweep")
    _add_point_args(sweep)
    _add_obs_args(sweep)
    sweep.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="sweep axis, e.g. vector_width=1,2,4,8,16 (repeatable)",
    )
    sweep.add_argument("--ntimes", type=int, default=3)
    sweep.add_argument(
        "--verify",
        action="store_true",
        help="differentially verify every point's output after its timed "
        "launches (mismatches become 'verify_mismatch' data points)",
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run sweep points on N workers (results stay in grid order)",
    )
    sweep.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="execution backend for sweep points (default: thread when "
        "--jobs > 1, else serial); 'process' survives worker crashes",
    )
    sweep.add_argument(
        "--slot-batch",
        type=int,
        default=1,
        metavar="N",
        help="serial backend: hand N grid points at a time to the engine "
        "so semantically identical variants share one whole-NDRange "
        "array pass (results stay bit-identical to --slot-batch 1)",
    )
    sweep.add_argument(
        "--max-worker-restarts",
        type=int,
        default=2,
        metavar="N",
        help="requeue a point whose worker crashed up to N times before "
        "recording it as a 'worker_crash' failure (default: 2)",
    )
    sweep.add_argument("--csv", metavar="PATH")
    sweep.add_argument(
        "--save", metavar="PATH", help="append results to a JSONL history file"
    )
    sweep.add_argument(
        "--journal",
        metavar="PATH",
        help="stream each completed point to a resumable JSONL journal",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip points already completed in --journal (restored, not "
        "re-run); fails if the journal is missing or empty — resuming "
        "nothing usually means a typo'd path",
    )
    sweep.add_argument(
        "--resume-or-start",
        action="store_true",
        help="like --resume, but fall back to a fresh sweep when the "
        "journal is missing or empty (for idempotent wrappers)",
    )
    sweep.add_argument(
        "--durable-journal",
        action="store_true",
        help="fsync the journal (and, once, its directory) after every "
        "point, so it survives hard worker/host kills and power loss "
        "(slower; implies --journal is trustworthy after a crash)",
    )
    sweep.add_argument(
        "--rotate-journal",
        type=int,
        default=None,
        metavar="N",
        help="seal the journal into a .seg-NNNNN segment every N records "
        "(checkpoint with 'mp-stream journal compact')",
    )
    sweep.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="deterministic fault injection, e.g. 'build=0.3,launch=0.2,seed=7' "
        f"(sites: {', '.join(FAULT_SITES)})",
    )
    sweep.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog: cancel a point after this much wall time "
        "(recorded as a 'timeout' failure)",
    )
    sweep.add_argument(
        "--virtual-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="watchdog: cancel a point whose modelled device time exceeds this",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="max retries per point for transient failures (default: 2)",
    )

    fig = sub.add_parser("figure", help="reproduce a paper figure")
    fig.add_argument("name", choices=sorted(_FIGURES) + ["targets"])
    fig.add_argument("--chart", action="store_true", help="also draw an ASCII chart")
    fig.add_argument("--csv", metavar="PATH", help="write the series as CSV")

    host = sub.add_parser("host-stream", help="run real numpy STREAM on this host")
    host.add_argument("--size", default="64MiB")
    host.add_argument("--ntimes", type=int, default=10)

    source = sub.add_parser("source", help="print the generated kernel source")
    _add_point_args(source)

    tune = sub.add_parser(
        "autotune", help="coordinate-descent DSE instead of a full grid"
    )
    _add_point_args(tune)
    _add_obs_args(tune)
    tune.add_argument(
        "--axis",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="axis to tune over (repeatable; default: loop + vector_width + unroll)",
    )
    tune.add_argument("--budget", type=int, default=40, help="max evaluations")
    tune.add_argument("--ntimes", type=int, default=3)
    tune.add_argument(
        "--strategy",
        choices=("descent", "multifidelity"),
        default="descent",
        help="descent: greedy coordinate descent (default); multifidelity: "
        "model-guided successive halving + refinement (docs/AUTOTUNE.md)",
    )
    tune.add_argument(
        "--eta",
        type=int,
        default=2,
        metavar="N",
        help="multifidelity halving rate: keep ceil(n/N) survivors per rung "
        "(default: 2)",
    )
    tune.add_argument(
        "--no-refine",
        action="store_true",
        help="multifidelity: skip local refinement, spend the whole budget "
        "on halving",
    )
    tune.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate each axis scan's candidates on N workers "
        "(the trajectory is unchanged)",
    )
    tune.add_argument(
        "--backend",
        choices=BACKENDS,
        default=None,
        help="execution backend for evaluations (default: thread when "
        "--jobs > 1, else serial)",
    )
    tune.add_argument(
        "--journal",
        metavar="PATH",
        help="stream each evaluation to a resumable JSONL journal",
    )
    tune.add_argument(
        "--resume",
        action="store_true",
        help="restore evaluations already in --journal instead of re-running "
        "them (the trajectory replays identically); fails if the journal "
        "is missing or empty",
    )
    tune.add_argument(
        "--resume-or-start",
        action="store_true",
        help="like --resume, but fall back to a fresh tuning run when the "
        "journal is missing or empty",
    )
    tune.add_argument(
        "--durable-journal",
        action="store_true",
        help="fsync the journal after every evaluation (see sweep "
        "--durable-journal)",
    )

    energy = sub.add_parser(
        "energy", help="energy-efficiency report for one parameter point"
    )
    _add_point_args(energy)
    energy.add_argument("--ntimes", type=int, default=3)

    comp = sub.add_parser(
        "compare", help="diff two result files written by sweep/run --save"
    )
    comp.add_argument("before", help="JSONL result file (baseline)")
    comp.add_argument("after", help="JSONL result file (new run)")

    jr = sub.add_parser(
        "journal", help="inspect and maintain campaign journals (WAL v2)"
    )
    jr_sub = jr.add_subparsers(dest="journal_command", required=True)
    jr_fsck = jr_sub.add_parser(
        "fsck",
        help="verify every record of a journal family (CRC framing, "
        "fingerprints, torn tail); read-only, exit 1 when damaged",
    )
    jr_fsck.add_argument("path", help="the journal's live file path")
    jr_compact = jr_sub.add_parser(
        "compact",
        help="checkpoint-compact a journal family into one all-v2 live "
        "file (dedups superseded records, upgrades v1, unlinks segments)",
    )
    jr_compact.add_argument("path", help="the journal's live file path")
    jr_compact.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsyncs during compaction (faster, less durable)",
    )

    ob = sub.add_parser(
        "obs",
        help="observability utilities: serve campaign health from a journal",
    )
    ob_sub = ob.add_subparsers(dest="obs_command", required=True)
    ob_serve = ob_sub.add_parser(
        "serve",
        help="watch a campaign from outside its process: derive health "
        "from the on-disk journal (read-only) and expose /metrics, "
        "/health and /campaign over HTTP",
    )
    ob_serve.add_argument(
        "--journal",
        required=True,
        metavar="PATH",
        help="the campaign journal's live file path",
    )
    ob_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default: 0 = ephemeral; the bound URL is printed)",
    )
    ob_serve.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: localhost)"
    )
    ob_serve.add_argument(
        "--once",
        action="store_true",
        help="print one /metrics rendering to stdout and exit instead of "
        "serving (for scripts and CI)",
    )

    gs = sub.add_parser(
        "gpustream", help="run the GPU-STREAM baseline (the paper's ref. [3])"
    )
    gs.add_argument("--target", default="gpu")
    gs.add_argument("--size", default="32MiB")
    gs.add_argument("--ntimes", type=int, default=10)
    gs.add_argument("--dot", action="store_true", help="include the DOT kernel")

    sub.add_parser(
        "selfcheck",
        help="fast consistency check: run tiny benchmarks on every target "
        "and verify the paper's qualitative orderings",
    )

    ver = sub.add_parser(
        "verify",
        help="differential verification suite: cross-model conformance, "
        "metamorphic invariants, engine integration and the golden "
        "regression corpus",
    )
    _add_obs_args(ver)
    ver.add_argument(
        "--grid",
        default="small",
        choices=["small", "default"],
        help="how much of the parameter space to cover (default: small)",
    )
    ver.add_argument(
        "--target",
        action="append",
        default=[],
        metavar="NAME",
        help="device targets for the engine-integration leg "
        "(repeatable; default: cpu+gpu for --grid small, all four otherwise)",
    )
    ver.add_argument(
        "--golden",
        metavar="PATH",
        default=None,
        help="golden corpus file (default: tests/golden/corpus.json)",
    )
    ver.add_argument(
        "--update-golden",
        action="store_true",
        help="re-pin the golden corpus to current behaviour instead of "
        "diffing against it",
    )
    ver.add_argument(
        "--skip-golden",
        action="store_true",
        help="skip the golden-corpus pillar (for environments without "
        "the checked-in corpus)",
    )
    ver.add_argument(
        "--inject-faults",
        metavar="SPEC",
        help="run the engine-integration leg under deterministic fault "
        "injection (e.g. 'verify=1.0,seed=7'); injected verify-site "
        "miscompiles must surface as 'verify_mismatch' data points",
    )

    bench = sub.add_parser(
        "bench",
        help="fast-lane microbenchmarks: time the vectorized hot paths "
        "against their scalar oracles, emit BENCH_PERF.json and gate "
        "against a previous report",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="smaller workloads and fewer repeats (CI smoke mode)",
    )
    bench.add_argument(
        "--only",
        metavar="NAME[,NAME...]",
        default=None,
        help="run only these benchmarks (comma-separated)",
    )
    bench.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_PERF.json",
        help="where to write the report (default: BENCH_PERF.json)",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="report to compare against (default: the previous --out "
        "file, when one exists)",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=25.0,
        metavar="PCT",
        help="tolerated regression in percent (default: 25)",
    )
    bench.add_argument(
        "--no-compare",
        action="store_true",
        help="write the report without gating against any baseline",
    )
    return parser


def _add_point_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--target", default="cpu", help="aocl|sdaccel|cpu|gpu")
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the compile/plan artifact cache (every point pays "
        "the full front-end and device build)",
    )
    parser.add_argument(
        "--kernel", default="copy", choices=[k.value for k in KernelName]
    )
    parser.add_argument("--size", default="4MiB", help="bytes per array, e.g. 4MiB")
    parser.add_argument(
        "--dtype", default="int", choices=[d.cname for d in DataType]
    )
    parser.add_argument("--vec", type=int, default=1, help="vector width")
    parser.add_argument(
        "--pattern",
        default="contiguous",
        choices=[p.value for p in AccessPattern],
    )
    parser.add_argument(
        "--loop", default=None, choices=[mode.value for mode in LoopManagement],
        help="loop management (default: the target's optimal mode)",
    )
    parser.add_argument("--unroll", type=int, default=1)
    parser.add_argument("--wg", type=int, default=None, help="reqd_work_group_size")
    parser.add_argument("--simd", type=int, default=1, help="AOCL SIMD work-items")
    parser.add_argument("--cu", type=int, default=1, help="AOCL compute units")
    parser.add_argument(
        "--host-streams",
        action="store_true",
        help="measure host<->device (PCIe) streams instead of global memory",
    )
    parser.add_argument(
        "--exec-lane",
        default="auto",
        choices=["auto", "vectorized", "compiled", "interp"],
        help="functional execution lane (default: auto = whole-NDRange "
        "array lane, falling back to compiled closures, then the "
        "interpreter); forcing a lane is a debugging/differential aid",
    )


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event JSON of nested sweep/point/stage/"
        "queue spans (open in chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a metrics-registry snapshot JSON (cache hits, stage "
        "seconds, retries, memsim byte counters) and print the table",
    )
    parser.add_argument(
        "--log-json",
        metavar="PATH",
        help="append structured JSONL events (per-point records carry the "
        "journal's point fingerprint)",
    )
    parser.add_argument(
        "--serve-obs",
        metavar="PORT",
        type=int,
        default=None,
        help="serve live /metrics (Prometheus text), /health and /campaign "
        "on localhost:PORT for the duration of the command (0 = pick an "
        "ephemeral port; implies an in-memory metrics registry)",
    )
    level = parser.add_mutually_exclusive_group()
    level.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more per-point output (stage wall times, attempt counts)",
    )
    level.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress per-point output; summaries only",
    )


def _verbosity(args: argparse.Namespace) -> int:
    if getattr(args, "quiet", False):
        return 0
    return 1 + getattr(args, "verbose", 0)


@contextmanager
def _obs_session(args: argparse.Namespace):
    """The observability sinks this invocation asked for, as a context."""
    with obs.session(
        trace=getattr(args, "trace", None),
        metrics=getattr(args, "metrics", None),
        log_json=getattr(args, "log_json", None),
        serve=getattr(args, "serve_obs", None),
    ) as session:
        if session.server is not None:
            # stderr, so scripts scraping stdout tables are unaffected
            print(f"serving observability at {session.server.url}", file=sys.stderr)
        yield session


def _report_obs(session: obs.ObsSession) -> None:
    """Print the metrics table and the artifact paths a session wrote."""
    if session.registry is not None:
        print()
        print(metrics_table(session.registry.snapshot()))
    for label, path in session.written:
        print(f"wrote {label} -> {path}")


def _params_from(args: argparse.Namespace) -> TuningParameters:
    from .core import optimal_loop_for

    loop = (
        LoopManagement(args.loop)
        if args.loop is not None
        else optimal_loop_for(args.target)
    )
    return TuningParameters(
        kernel=KernelName(args.kernel),
        array_bytes=parse_size(args.size),
        dtype=next(d for d in DataType if d.cname == args.dtype),
        vector_width=args.vec,
        pattern=AccessPattern(args.pattern),
        loop=loop,
        unroll=args.unroll,
        reqd_work_group_size=args.wg,
        num_simd_work_items=args.simd,
        num_compute_units=args.cu,
        locus=StreamLocus.HOST if args.host_streams else StreamLocus.DEVICE,
    )


def _parse_axis(text: str) -> tuple[str, list[object]]:
    if "=" not in text:
        raise ReproError(f"bad --axis {text!r}: expected FIELD=V1,V2,...")
    field, _, raw = text.partition("=")
    field = field.strip()
    if not raw.strip():
        raise ReproError(f"bad --axis {text!r}: axis {field!r} has no values")
    values: list[object] = []
    converters = {
        "kernel": KernelName,
        "pattern": AccessPattern,
        "loop": LoopManagement,
        "dtype": lambda v: next(d for d in DataType if d.cname == v),
        "array_bytes": parse_size,
        "locus": StreamLocus,
    }
    conv = converters.get(field, int)
    for token in raw.split(","):
        token = token.strip()
        if not token:
            raise ReproError(
                f"bad --axis {text!r}: empty value in {raw!r}"
            )
        try:
            values.append(conv(token))  # type: ignore[operator]
        except ReproError:
            raise
        except (ValueError, KeyError, StopIteration):
            raise ReproError(
                f"bad --axis {text!r}: cannot parse {token!r} as a "
                f"{field!r} value"
            ) from None
    return field, values


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def _cmd_devices(_: argparse.Namespace) -> int:
    for platform in get_platforms():
        print(f"{platform.name}  (vendor: {platform.vendor})")
        for device in platform.devices:
            info = device.info()
            print(
                f"  [{device.short_name:8s}] {info['name']}\n"
                f"             type={info['type']}  "
                f"CUs={info['max_compute_units']}  "
                f"peak={info['peak_global_bandwidth_gbs']} GB/s  "
                f"mem={format_size(int(info['global_mem_size']))}"
            )
    return 0


def _make_runner(args: argparse.Namespace, ntimes: int) -> BenchmarkRunner:
    faults = None
    if getattr(args, "inject_faults", None):
        faults = FaultPlan.parse(args.inject_faults)
    watchdog = None
    wall = getattr(args, "point_timeout", None)
    virtual = getattr(args, "virtual_timeout", None)
    if wall is not None or virtual is not None:
        watchdog = Watchdog(wall_s=wall, virtual_s=virtual)
    return BenchmarkRunner(
        args.target,
        ntimes=ntimes,
        verify=getattr(args, "verify", False),
        cache=not getattr(args, "no_cache", False),
        faults=faults,
        watchdog=watchdog,
        retries=getattr(args, "retries", 2),
        exec_lane=getattr(args, "exec_lane", "auto"),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    params = _params_from(args)
    runner = _make_runner(args, args.ntimes)
    with _obs_session(args) as session:
        if args.all_kernels:
            results = runner.run_all_kernels(params)
            print(stream_table(results))
            failed = any(not r.ok for r in results)
        else:
            result = runner.run(params)
            print(result.summary())
            failed = not result.ok
    _report_obs(session)
    if args.csv:
        from .core import ResultSet

        rs = ResultSet(results if args.all_kernels else [result])
        rs.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.save:
        from .core import save_results

        n = save_results(results if args.all_kernels else [result], args.save)
        print(f"appended {n} results to {args.save}")
    return 1 if failed else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    base = _params_from(args)
    axes = dict(_parse_axis(a) for a in args.axis)
    sweep = ParameterSweep(base=base, axes=axes)
    runner = _make_runner(args, args.ntimes)
    journal = (
        SweepJournal(
            args.journal,
            durable=args.durable_journal,
            rotate_records=args.rotate_journal,
        )
        if args.journal
        else None
    )
    with _obs_session(args) as session:
        reporter = obs.SweepProgress(total=len(sweep), verbosity=_verbosity(args))
        # the CLI is a scheduler client like explore()/autotune(): the
        # scheduler handle is kept so crash/requeue counters can be shown
        scheduler = CampaignScheduler(
            runner,
            backend=args.backend,
            jobs=args.jobs,
            journal=journal,
            resume=args.resume,
            resume_or_start=args.resume_or_start,
            progress=reporter,
            max_worker_restarts=args.max_worker_restarts,
            handle_signals=True,
            slot_batch=args.slot_batch,
        )
        points = list(sweep.points())
        results = scheduler.run(points, skipped=len(sweep.skipped))
        campaign_status = reporter.finish()
        # inside the session so the warnings also land in --log-json
        _warn_journal_health(journal, scheduler)
    print()
    print(results_table(results))
    best = results.best()
    if best is not None:
        print(
            f"\nbest: {best.params.describe()} -> "
            f"{format_bandwidth(best.bandwidth_gbs * 1e9)}"
        )
    for changes, reason in sweep.skipped:
        print(f"skipped {changes}: {reason}")
    stats = runner.engine.stats_snapshot()
    stage_s = stats["stage_s"]
    print(
        f"\n{len(results)} point(s) on {args.jobs} job(s) "
        f"({scheduler.backend_used} backend), "
        f"{len(sweep.skipped)} invalid point(s) skipped; "
        f"cache: front-end {stats['frontend_hits']} hit"
        f"/{stats['frontend_misses']} miss, "
        f"plans {stats['plan_hits']} hit/{stats['plan_misses']} miss"
    )
    if scheduler.crashes or scheduler.deduped or scheduler.progress_errors:
        print(
            f"scheduler: {scheduler.crashes} worker crash(es), "
            f"{scheduler.requeues} requeued, "
            f"{scheduler.crash_failures} failed on crash, "
            f"{scheduler.deduped} deduped"
        )
    print(
        "stage wall time: "
        + ", ".join(f"{name} {stage_s[name]:.3f}s" for name in sorted(stage_s))
    )
    print(f"campaign: {campaign_status}")
    if stats["retries"]:
        print(f"transient retries: {stats['retries']}")
    if results.failure_kinds():
        print()
        print(failure_table(results))
    if journal is not None:
        print(
            f"journal: {journal.reused} restored, {journal.executed} executed"
            + (f", {journal.discarded} discarded" if journal.discarded else "")
            + f" -> {journal.path}"
        )
    _report_obs(session)
    if args.csv:
        results.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.save:
        from .core import save_results

        n = save_results(results, args.save)
        print(f"appended {n} results to {args.save}")
    if scheduler.interrupted is not None:
        print(
            f"interrupted by {scheduler.interrupted}: "
            f"{scheduler.cancelled} point(s) cancelled, journal "
            f"checkpointed — rerun with --resume to finish",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    return 0


def _warn_journal_health(
    journal: SweepJournal | None, scheduler: CampaignScheduler | None = None
) -> None:
    """Operator-facing warnings for journal data loss/degradation.

    Routed through :func:`repro.obs.warn` (one structured ``warning``
    event plus the stderr line), so the warnings land in ``--log-json``
    too — call this *inside* the obs session block.
    """
    if journal is not None and journal.discarded:
        report = journal.load_report
        breakdown = (
            f" (torn tail: {report.torn_tail}, corrupt: {report.corrupt}, "
            f"stale: {report.stale})"
            if report is not None
            else ""
        )
        obs.warn(
            f"{journal.discarded} journal record(s) dropped on "
            f"load{breakdown}; damaged lines are preserved in "
            f"{journal.path}.quarantine and the affected points re-ran "
            f"— see 'mp-stream journal fsck'",
            kind="journal_records_dropped",
            path=str(journal.path),
            dropped=journal.discarded,
        )
    if scheduler is not None and scheduler.journal_degraded:
        obs.warn(
            f"journal failed mid-sweep and was quarantined "
            f"({scheduler.journal_error}); the campaign finished "
            f"in-memory without durability",
            kind="journal_degraded",
            error=scheduler.journal_error,
        )


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name == "targets":
        rows = figures.targets_table()
        for row in rows:
            print(
                f"{row['target']:8s} {row['device']}\n"
                f"         platform={row['platform']}  "
                f"peak={row['peak_bw_gbs']} GB/s"
            )
        return 0
    series = _FIGURES[args.name]()
    print(series_table(series, x_label="x"))
    if args.chart:
        print()
        print(ascii_chart(series, title=args.name))
    if args.csv:
        import csv

        xs: list[object] = []
        for pts in series.values():
            for x, _ in pts:
                if x not in xs:
                    xs.append(x)
        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["x"] + list(series))
            lookup = {name: dict(pts) for name, pts in series.items()}
            for x in xs:
                writer.writerow(
                    [x] + [lookup[name].get(x, "") for name in series]
                )
        print(f"wrote {args.csv}")
    return 0


def _cmd_host_stream(args: argparse.Namespace) -> int:
    from .hoststream import classic_report, run_host_stream

    results = run_host_stream(
        array_bytes=parse_size(args.size), ntimes=args.ntimes
    )
    print(classic_report(results))
    return 0


def _cmd_source(args: argparse.Namespace) -> int:
    gen = generate(_params_from(args))
    print(f"// kernel: {gen.kernel_name}")
    print(f"// defines: {gen.defines}")
    print(f"// global_size: {gen.global_size}  local_size: {gen.local_size}")
    print(gen.source)
    return 0


def _cmd_autotune(args: argparse.Namespace) -> int:
    from .core import LoopManagement as _LM
    from .core import autotune, multifidelity_search

    seed = _params_from(args)
    if args.axis:
        axes = dict(_parse_axis(a) for a in args.axis)
    else:
        axes = {
            "loop": list(_LM),
            "vector_width": [1, 2, 4, 8, 16],
            "unroll": [1, 2, 4],
        }
    runner = _make_runner(args, args.ntimes)
    journal = (
        SweepJournal(args.journal, durable=args.durable_journal)
        if args.journal
        else None
    )
    with _obs_session(args) as session:
        if args.strategy == "multifidelity":
            out = multifidelity_search(
                runner,
                axes,
                seed=seed,
                budget=args.budget,
                eta=args.eta,
                refine=not args.no_refine,
                jobs=args.jobs,
                backend=args.backend,
                journal=journal,
                resume=args.resume,
                resume_or_start=args.resume_or_start,
            )
        else:
            out = autotune(
                runner,
                axes,
                seed=seed,
                budget=args.budget,
                jobs=args.jobs,
                backend=args.backend,
                journal=journal,
                resume=args.resume,
                resume_or_start=args.resume_or_start,
            )
        # inside the session so the warnings also land in --log-json
        _warn_journal_health(journal)
    _report_obs(session)
    if args.strategy == "multifidelity":
        print(
            f"evaluated {out.spent}/{out.pool_size} pool points "
            f"({len(out.rungs)} rungs, trajectory "
            f"{out.trajectory_fingerprint()})"
        )
        for rung in out.rungs:
            print(
                f"  rung {rung.index} [{rung.tier}]: "
                f"{len(rung.candidates)} candidate(s) -> "
                f"{len(rung.survivors)} survivor(s), spent {rung.spent}"
            )
    else:
        print(
            f"evaluated {out.evaluations_used} points in {out.rounds} round(s)"
        )
    if journal is not None:
        print(
            f"journal: {journal.reused} restored, {journal.executed} executed"
            f" -> {journal.path}"
        )
    for desc, bw in out.trajectory:
        print(f"  -> {desc}: {bw:.3f} GB/s")
    best = out.best
    print(
        f"\nbest: {best.params.describe()} = "
        f"{format_bandwidth(best.bandwidth_gbs * 1e9)}"
    )
    return 0 if best.ok else 1


def _cmd_journal(args: argparse.Namespace) -> int:
    from pathlib import Path

    path = Path(args.path)
    if args.journal_command == "fsck":
        report = fsck_journal(path)
        print(report.describe())
        if not report.files:
            print(f"error: no journal found at {path}", file=sys.stderr)
            return 2
        return 0 if report.clean else 1
    assert args.journal_command == "compact"
    if not fsck_journal(path).files:
        print(f"error: no journal found at {path}", file=sys.stderr)
        return 2
    kept = compact_journal(path, durable=not args.no_fsync)
    print(f"compacted {path} -> {kept} record(s), v2, single live file")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    """``mp-stream obs serve``: journal-watcher exposition server.

    Read-only against the journal family (never truncates or
    quarantines), so it is safe to point at a *live* campaign's journal
    from another terminal — each scrape re-derives
    :class:`~repro.obs.CampaignHealth` from the records on disk.
    """
    assert args.obs_command == "serve"
    from pathlib import Path

    path = Path(args.journal)
    if not fsck_journal(path).files:
        print(f"error: no journal found at {path}", file=sys.stderr)
        return 2

    def health_source() -> obs.CampaignHealth:
        return obs.health_from_journal(path)

    if args.once:
        print(obs.prometheus_text(None, health_source()), end="")
        return 0
    server = obs.ObsServer(
        port=args.port, host=args.host, health_source=health_source
    )
    print(f"serving observability at {server.url} (Ctrl-C to stop)")
    print(f"watching journal {path} (read-only; re-read per scrape)")
    try:
        while True:
            signal.pause()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_energy(args: argparse.Namespace) -> int:
    from .devices.energy import energy_report

    params = _params_from(args)
    result = _make_runner(args, args.ntimes).run(params)
    if not result.ok:
        print(f"error: {result.error}", file=sys.stderr)
        return 1
    print(result.summary())
    report = energy_report(result)
    print(report.summary())
    print(
        f"  static {report.static_j * 1e3:.2f} mJ + "
        f"transfer {report.transfer_j * 1e3:.2f} mJ"
    )
    return 0


def _cmd_selfcheck(_: argparse.Namespace) -> int:
    """Cheap end-to-end health check of the whole stack."""
    from .core import optimal_loop_for

    n = 256 * 1024
    checks: list[tuple[str, bool, str]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append((name, ok, detail))
        print(f"  [{'ok' if ok else 'FAIL'}] {name}" + (f"  ({detail})" if detail else ""))

    print("running self-check (256 KiB arrays)...")
    bw: dict[str, float] = {}
    for target in ("aocl", "sdaccel", "cpu", "gpu"):
        runner = BenchmarkRunner(target, ntimes=2)
        result = runner.run(
            TuningParameters(array_bytes=n, loop=optimal_loop_for(target))
        )
        bw[target] = result.bandwidth_gbs
        check(
            f"{target}: copy runs and validates",
            result.ok and result.validated,
            f"{result.bandwidth_gbs:.3f} GB/s",
        )
    check(
        "cross-target ordering gpu > cpu > aocl > sdaccel",
        bw["gpu"] > bw["cpu"] > bw["aocl"] > bw["sdaccel"],
    )
    aocl16 = BenchmarkRunner("aocl", ntimes=2).run(
        TuningParameters(array_bytes=n, loop=LoopManagement.FLAT, vector_width=16)
    )
    check(
        "vectorization lifts the FPGA",
        aocl16.ok and aocl16.bandwidth_gbs > 2 * bw["aocl"],
        f"{bw['aocl']:.2f} -> {aocl16.bandwidth_gbs:.2f} GB/s",
    )
    strided = BenchmarkRunner("sdaccel", ntimes=2).run(
        TuningParameters(
            array_bytes=n,
            loop=LoopManagement.NESTED,
            pattern=AccessPattern.STRIDED,
        )
    )
    check(
        "strided access collapses on sdaccel",
        strided.ok and strided.bandwidth_gbs < 0.05,
        f"{strided.bandwidth_gbs:.4f} GB/s",
    )
    failed = [name for name, ok, _ in checks if not ok]
    print()
    if failed:
        print(f"self-check FAILED: {failed}", file=sys.stderr)
        return 1
    print(f"self-check passed ({len(checks)} checks)")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run the three-pillar verification suite as a gate.

    Exit 0 when everything holds, 1 when any pillar fails. With
    ``--inject-faults`` the engine-integration leg instead asserts that
    injected miscompiles surface as classified ``verify_mismatch`` data
    points (the negative path), not as crashes.
    """
    from pathlib import Path

    from . import verify as V
    from .core import optimal_loop_for, verify_table

    quick = args.grid == "small"
    sections: dict[str, list[tuple[str, bool, str]]] = {}
    with _obs_session(args) as session:
        # pillar 1: cross-model conformance over every kernel variant
        rows: list[tuple[str, bool, str]] = []
        for kernel, dtype, nbytes in V.conformance_combos(args.grid):
            rep = V.check_variants(kernel, dtype, nbytes)
            rows.append((rep.describe(), rep.ok, ""))
        sections["conformance"] = rows

        # pillar 2: metamorphic laws over the performance models
        rows = []
        for law in V.check_all(quick=quick):
            detail = "; ".join(v.describe() for v in law.violations[:2])
            rows.append((law.describe(), law.ok, detail))
        sections["metamorphic"] = rows

        # engine integration: sweep a small grid end-to-end with the
        # verify stage enabled (under fault injection when asked)
        faults = (
            FaultPlan.parse(args.inject_faults) if args.inject_faults else None
        )
        targets = args.target or (
            ["cpu", "gpu"] if quick else ["cpu", "gpu", "aocl", "sdaccel"]
        )
        rows = []
        for target in targets:
            sweep = ParameterSweep(
                base=TuningParameters(
                    array_bytes=4096, loop=optimal_loop_for(target)
                ),
                axes={
                    "kernel": list(KernelName),
                    "dtype": [DataType.INT, DataType.DOUBLE],
                },
            )
            runner = BenchmarkRunner(target, ntimes=2, verify=True, faults=faults)
            results = explore(runner, sweep)
            kinds = results.failure_kinds()
            if faults is None:
                ok = all(r.ok for r in results)
                detail = f"{len(results)} points verified" if ok else str(kinds)
            else:
                # negative path: every failure must be *classified* —
                # an injected miscompile is a data point, not a crash
                ok = all(r.ok or r.failure_kind for r in results) and bool(kinds)
                detail = f"injected faults classified as {kinds}"
            rows.append((f"{target}: sweep --verify", ok, detail))
        sections["engine"] = rows

        # pillar 3: golden regression corpus (+ pinned search trajectories)
        if not args.skip_golden:
            golden_path = (
                Path(args.golden) if args.golden else V.DEFAULT_GOLDEN_PATH
            )
            search_path = (
                golden_path.with_name("search_trajectories.json")
                if args.golden
                else V.DEFAULT_SEARCH_GOLDEN_PATH
            )
            current = V.compute_corpus()
            search_current = V.compute_search_corpus()
            n = len(current["entries"])
            n_search = len(search_current["entries"])
            if args.update_golden:
                V.save_corpus(golden_path, current)
                V.save_corpus(search_path, search_current)
                sections["golden"] = [
                    (f"re-pinned {n} entries -> {golden_path}", True, ""),
                    (
                        f"re-pinned {n_search} trajectories -> {search_path}",
                        True,
                        "",
                    ),
                ]
            else:
                pinned = V.load_corpus(golden_path)
                diff = V.diff_corpus(pinned, current)
                drift = V.format_drift(diff, pinned, current)
                search_pinned = V.load_corpus(search_path)
                search_diff = V.diff_corpus(
                    search_pinned,
                    search_current,
                    fields=V.SEARCH_COMPARED_FIELDS,
                )
                search_drift = V.format_drift(
                    search_diff, search_pinned, search_current
                )
                sections["golden"] = [
                    (drift.splitlines()[0], diff.clean, ""),
                    (
                        "search trajectories: "
                        + search_drift.splitlines()[0].removeprefix(
                            "golden corpus"
                        ).lstrip(": "),
                        search_diff.clean,
                        "",
                    ),
                ]
                if not diff.clean:
                    print(drift)
                    print()
                if not search_diff.clean:
                    print(search_drift)
                    print()
    print(verify_table(sections))
    _report_obs(session)
    failed = any(not ok for rows in sections.values() for _, ok, _ in rows)
    return 1 if failed else 0


def _cmd_gpustream(args: argparse.Namespace) -> int:
    from .gpustream import run_gpu_stream

    results = run_gpu_stream(
        args.target,
        array_bytes=parse_size(args.size),
        ntimes=args.ntimes,
        with_dot=args.dot,
    )
    print(f"GPU-STREAM on {args.target} ({args.size}/array, {args.ntimes} iterations)")
    print(f"{'Function':<10}{'Best Rate':>14}{'Avg time':>12}")
    print("-" * 36)
    for name, r in results.items():
        print(
            f"{name:<10}{format_bandwidth(r.bandwidth_gbs * 1e9):>14}"
            f"{r.avg_time * 1e3:>10.3f}ms"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core import compare_results, load_results

    entries = compare_results(load_results(args.before), load_results(args.after))
    if not entries:
        print("(nothing to compare)")
        return 0
    width = max(len(e.description) for e in entries)
    for e in entries:
        ratio = f"{e.ratio:.2f}x" if e.ratio is not None else "  -  "
        before = f"{e.before_gbs:.3f}" if e.before_gbs is not None else "  -  "
        after = f"{e.after_gbs:.3f}" if e.after_gbs is not None else "  -  "
        print(f"{e.status:>9}  {e.description:<{width}}  {before:>9} -> {after:>9}  {ratio}")
    regressed = sum(1 for e in entries if e.status == "regressed")
    return 1 if regressed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .perf import compare, format_report, load_report, run_benchmarks, save_report

    only = None
    if args.only is not None:
        # strip + reject empties here so `--only ""` or `--only a,,b`
        # errors instead of silently running everything / nothing;
        # unknown names are rejected by run_benchmarks with the valid
        # list in the message
        only = [token.strip() for token in args.only.split(",")]
        only = [token for token in only if token]
        if not only:
            raise ReproError(
                f"bad --only {args.only!r}: expected a comma-separated "
                "list of benchmark names"
            )
    baseline = None
    baseline_path = args.baseline
    if not args.no_compare:
        if baseline_path is None and Path(args.out).exists():
            baseline_path = args.out
        if baseline_path is not None:
            baseline = load_report(baseline_path)
    report = run_benchmarks(quick=args.quick, only=only)
    print(format_report(report))
    problems = [] if args.no_compare else compare(
        report, baseline, threshold=args.threshold / 100.0
    )
    save_report(report, args.out)
    print(f"wrote {args.out}")
    if baseline_path is not None and not args.no_compare:
        print(f"compared against {baseline_path} (threshold {args.threshold:g}%)")
    for problem in problems:
        print(f"REGRESSION: {problem}")
    return 1 if problems else 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "devices": _cmd_devices,
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "figure": _cmd_figure,
        "host-stream": _cmd_host_stream,
        "source": _cmd_source,
        "autotune": _cmd_autotune,
        "energy": _cmd_energy,
        "compare": _cmd_compare,
        "journal": _cmd_journal,
        "obs": _cmd_obs,
        "gpustream": _cmd_gpustream,
        "selfcheck": _cmd_selfcheck,
        "verify": _cmd_verify,
        "bench": _cmd_bench,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
