"""Recursive-descent parser for the OpenCL-C subset.

Produces :mod:`repro.oclc.cast` trees. The grammar is classic C with
OpenCL extensions limited to what kernels in the MP-STREAM design space
use: ``__kernel`` functions, address-space qualifiers on pointer
parameters, ``__attribute__`` lists, vector literals, swizzles and
``#pragma unroll``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..errors import InvalidValueError, ParseError
from ..ocl.types import parse_type_name
from . import cast
from .lexer import Token, tokenize

__all__ = ["parse", "Parser"]


def parse(source: str, defines: Mapping[str, str] | None = None) -> cast.TranslationUnit:
    """Parse OpenCL-C ``source`` (with optional ``-D`` defines) to an AST."""
    return Parser(tokenize(source, defines)).translation_unit()


def _is_type_name(text: str) -> bool:
    try:
        parse_type_name(text)
        return True
    except InvalidValueError:
        return False


_ADDR_SPACE_ALIASES = {
    "global": "__global",
    "local": "__local",
    "constant": "__constant",
    "private": "__private",
    "__global": "__global",
    "__local": "__local",
    "__constant": "__constant",
    "__private": "__private",
}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def _tok(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, ahead: int = 1) -> Token:
        return self._tokens[min(self._pos + ahead, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        tok = self._tok
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _expect(self, kind: str, text: str | None = None) -> Token:
        tok = self._tok
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {tok.text or tok.kind!r}",
                line=tok.line,
                col=tok.col,
            )
        return self._advance()

    def _accept(self, kind: str, text: str | None = None) -> Optional[Token]:
        tok = self._tok
        if tok.kind == kind and (text is None or tok.text == text):
            return self._advance()
        return None

    # -- top level ----------------------------------------------------------

    def translation_unit(self) -> cast.TranslationUnit:
        functions: list[cast.FunctionDef] = []
        while self._tok.kind != "eof":
            if self._tok.kind == "pragma":
                # File-scope pragmas (e.g. extension enables) carry no
                # semantics we model; skip them.
                self._advance()
                continue
            functions.append(self._function())
        return cast.TranslationUnit(tuple(functions), line=1)

    def _function(self) -> cast.FunctionDef:
        line = self._tok.line
        is_kernel = False
        attributes: list[cast.Attribute] = []
        while True:
            if self._accept("keyword", "__kernel") or self._accept("keyword", "kernel"):
                is_kernel = True
                continue
            if self._tok.is_keyword("__attribute__"):
                attributes.extend(self._attribute_list())
                continue
            break
        ret_tok = self._tok
        if ret_tok.kind == "keyword" and ret_tok.text == "void":
            self._advance()
            return_type = "void"
        elif ret_tok.kind == "ident" and _is_type_name(ret_tok.text):
            self._advance()
            return_type = ret_tok.text
        else:
            raise ParseError(
                f"expected return type, found {ret_tok.text!r}",
                line=ret_tok.line,
                col=ret_tok.col,
            )
        name = self._expect("ident").text
        self._expect("punct", "(")
        params: list[cast.Param] = []
        if not self._tok.is_punct(")"):
            params.append(self._param())
            while self._accept("punct", ","):
                params.append(self._param())
        self._expect("punct", ")")
        # attributes may also follow the parameter list
        while self._tok.is_keyword("__attribute__"):
            attributes.extend(self._attribute_list())
        body = self._block()
        return cast.FunctionDef(
            name=name,
            return_type=return_type,
            params=tuple(params),
            body=body,
            is_kernel=is_kernel,
            attributes=tuple(attributes),
            line=line,
        )

    def _attribute_list(self) -> list[cast.Attribute]:
        line = self._tok.line
        self._expect("keyword", "__attribute__")
        self._expect("punct", "(")
        self._expect("punct", "(")
        attrs: list[cast.Attribute] = []
        while not self._tok.is_punct(")"):
            name = self._expect("ident").text
            args: list[int] = []
            if self._accept("punct", "("):
                while not self._tok.is_punct(")"):
                    tok = self._expect("int")
                    args.append(int(tok.value))  # type: ignore[arg-type]
                    if not self._tok.is_punct(")"):
                        self._expect("punct", ",")
                self._expect("punct", ")")
            attrs.append(cast.Attribute(name=name, args=tuple(args), line=line))
            if not self._tok.is_punct(")"):
                self._expect("punct", ",")
        self._expect("punct", ")")
        self._expect("punct", ")")
        return attrs

    def _param(self) -> cast.Param:
        line = self._tok.line
        address_space = "__private"
        qualifiers: list[str] = []
        while self._tok.kind == "keyword":
            text = self._tok.text
            if text in _ADDR_SPACE_ALIASES:
                address_space = _ADDR_SPACE_ALIASES[text]
                self._advance()
            elif text in ("const", "restrict", "volatile"):
                qualifiers.append(text)
                self._advance()
            else:
                break
        type_tok = self._tok
        if not (type_tok.kind == "ident" and _is_type_name(type_tok.text)):
            raise ParseError(
                f"expected parameter type, found {type_tok.text!r}",
                line=type_tok.line,
                col=type_tok.col,
            )
        self._advance()
        is_pointer = bool(self._accept("punct", "*"))
        while self._tok.kind == "keyword" and self._tok.text in (
            "const",
            "restrict",
            "volatile",
        ):
            qualifiers.append(self._advance().text)
        name = self._expect("ident").text
        if is_pointer and address_space == "__private":
            # OpenCL kernels take global pointers by default in our subset.
            address_space = "__global"
        return cast.Param(
            type_name=type_tok.text,
            name=name,
            address_space=address_space if is_pointer else "__private",
            is_pointer=is_pointer,
            qualifiers=tuple(qualifiers),
            line=line,
        )

    # -- statements ----------------------------------------------------------

    def _block(self) -> cast.Block:
        line = self._tok.line
        self._expect("punct", "{")
        body: list[cast.Stmt] = []
        while not self._tok.is_punct("}"):
            if self._tok.kind == "eof":
                raise ParseError("unterminated block", line=line)
            body.append(self._statement())
        self._expect("punct", "}")
        return cast.Block(tuple(body), line=line)

    def _statement(self) -> cast.Stmt:
        tok = self._tok
        if tok.kind == "pragma":
            return self._pragma_statement()
        if tok.is_punct("{"):
            return self._block()
        if tok.is_punct(";"):
            self._advance()
            return cast.Block((), line=tok.line)
        if tok.kind == "keyword":
            if tok.text == "if":
                return self._if()
            if tok.text == "for":
                return self._for(unroll=1)
            if tok.text == "while":
                return self._while()
            if tok.text == "return":
                self._advance()
                value = None if self._tok.is_punct(";") else self._expression()
                self._expect("punct", ";")
                return cast.Return(value, line=tok.line)
            if tok.text == "break":
                self._advance()
                self._expect("punct", ";")
                return cast.Break(line=tok.line)
            if tok.text == "continue":
                self._advance()
                self._expect("punct", ";")
                return cast.Continue(line=tok.line)
            if tok.text in ("const", "__local", "local", "__private", "private"):
                return self._declaration()
        if tok.kind == "ident" and _is_type_name(tok.text) and self._peek().kind == "ident":
            return self._declaration()
        expr = self._expression()
        self._expect("punct", ";")
        return cast.ExprStmt(expr, line=tok.line)

    def _pragma_statement(self) -> cast.Stmt:
        tok = self._advance()
        body = str(tok.value)
        parts = body.split()
        if parts and parts[0] == "unroll":
            factor = int(parts[1]) if len(parts) > 1 else 0  # 0 = full unroll
            if not self._tok.is_keyword("for"):
                raise ParseError(
                    "#pragma unroll must precede a for loop", line=tok.line
                )
            return self._for(unroll=factor)
        return cast.Pragma(body, line=tok.line)

    def _declaration(self) -> cast.DeclStmt:
        line = self._tok.line
        qualifiers: list[str] = []
        while self._tok.kind == "keyword" and self._tok.text in (
            "const",
            "__local",
            "local",
            "__private",
            "private",
        ):
            qualifiers.append(_ADDR_SPACE_ALIASES.get(self._tok.text, self._tok.text))
            self._advance()
        type_tok = self._tok
        if not (type_tok.kind == "ident" and _is_type_name(type_tok.text)):
            raise ParseError(
                f"expected type in declaration, found {type_tok.text!r}",
                line=type_tok.line,
                col=type_tok.col,
            )
        self._advance()
        name = self._expect("ident").text
        init: Optional[cast.Expr] = None
        if self._accept("punct", "="):
            init = self._assignment()
        self._expect("punct", ";")
        return cast.DeclStmt(
            type_name=type_tok.text,
            name=name,
            init=init,
            qualifiers=tuple(qualifiers),
            line=line,
        )

    def _if(self) -> cast.If:
        line = self._tok.line
        self._expect("keyword", "if")
        self._expect("punct", "(")
        cond = self._expression()
        self._expect("punct", ")")
        then = self._statement()
        other: Optional[cast.Stmt] = None
        if self._accept("keyword", "else"):
            other = self._statement()
        return cast.If(cond, then, other, line=line)

    def _for(self, unroll: int) -> cast.For:
        line = self._tok.line
        self._expect("keyword", "for")
        self._expect("punct", "(")
        init: Optional[cast.Stmt] = None
        if not self._tok.is_punct(";"):
            if (
                self._tok.kind == "ident"
                and _is_type_name(self._tok.text)
                and self._peek().kind == "ident"
            ):
                init = self._for_init_declaration()
            else:
                expr = self._expression()
                init = cast.ExprStmt(expr, line=expr.line)
                self._expect("punct", ";")
        else:
            self._expect("punct", ";")
        cond = None if self._tok.is_punct(";") else self._expression()
        self._expect("punct", ";")
        step = None if self._tok.is_punct(")") else self._expression()
        self._expect("punct", ")")
        body = self._statement()
        return cast.For(init, cond, step, body, unroll=unroll, line=line)

    def _for_init_declaration(self) -> cast.DeclStmt:
        line = self._tok.line
        type_name = self._advance().text
        name = self._expect("ident").text
        init: Optional[cast.Expr] = None
        if self._accept("punct", "="):
            init = self._assignment()
        self._expect("punct", ";")
        return cast.DeclStmt(type_name=type_name, name=name, init=init, line=line)

    def _while(self) -> cast.While:
        line = self._tok.line
        self._expect("keyword", "while")
        self._expect("punct", "(")
        cond = self._expression()
        self._expect("punct", ")")
        body = self._statement()
        return cast.While(cond, body, line=line)

    # -- expressions ----------------------------------------------------------

    def _expression(self) -> cast.Expr:
        return self._assignment()

    def _assignment(self) -> cast.Expr:
        left = self._conditional()
        tok = self._tok
        if tok.kind == "punct" and tok.text in cast.ASSIGN_OPS:
            self._advance()
            value = self._assignment()
            if not isinstance(left, (cast.Ident, cast.Index, cast.Swizzle)):
                raise ParseError(
                    "invalid assignment target", line=tok.line, col=tok.col
                )
            return cast.Assign(tok.text, left, value, line=tok.line)
        return left

    def _conditional(self) -> cast.Expr:
        cond = self._binary(0)
        if self._tok.is_punct("?"):
            line = self._advance().line
            then = self._expression()
            self._expect("punct", ":")
            other = self._conditional()
            return cast.Conditional(cond, then, other, line=line)
        return cond

    def _binary(self, level: int) -> cast.Expr:
        if level >= len(cast.BINARY_OPS):
            return self._unary()
        ops = cast.BINARY_OPS[level]
        left = self._binary(level + 1)
        while self._tok.kind == "punct" and self._tok.text in ops:
            tok = self._advance()
            right = self._binary(level + 1)
            left = cast.Binary(tok.text, left, right, line=tok.line)
        return left

    def _unary(self) -> cast.Expr:
        tok = self._tok
        if tok.kind == "punct" and tok.text in cast.UNARY_OPS:
            self._advance()
            return cast.Unary(tok.text, self._unary(), line=tok.line)
        if tok.kind == "punct" and tok.text in ("++", "--"):
            self._advance()
            return cast.Unary(tok.text, self._unary(), line=tok.line)
        # cast or vector literal: '(' typename ')' ...
        if (
            tok.is_punct("(")
            and self._peek().kind == "ident"
            and _is_type_name(self._peek().text)
            and self._peek(2).is_punct(")")
        ):
            self._advance()
            type_name = self._advance().text
            self._expect("punct", ")")
            if self._tok.is_punct("("):
                return self._vector_literal_or_paren_cast(type_name, tok.line)
            return cast.Cast(type_name, self._unary(), line=tok.line)
        return self._postfix()

    def _vector_literal_or_paren_cast(self, type_name: str, line: int) -> cast.Expr:
        self._expect("punct", "(")
        elements = [self._assignment()]
        while self._accept("punct", ","):
            elements.append(self._assignment())
        self._expect("punct", ")")
        if len(elements) == 1:
            # (double)(x) is just a cast; (int4)(x) is a splat literal.
            ty = parse_type_name(type_name)
            from ..ocl.types import VectorType

            if not isinstance(ty, VectorType):
                return cast.Cast(type_name, elements[0], line=line)
        return cast.VectorLiteral(type_name, tuple(elements), line=line)

    def _postfix(self) -> cast.Expr:
        expr = self._primary()
        while True:
            tok = self._tok
            if tok.is_punct("["):
                self._advance()
                index = self._expression()
                self._expect("punct", "]")
                expr = cast.Index(expr, index, line=tok.line)
            elif tok.is_punct("."):
                self._advance()
                comp = self._expect("ident").text
                expr = cast.Swizzle(expr, comp, line=tok.line)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self._advance()
                expr = cast.Unary("p" + tok.text, expr, line=tok.line)
            else:
                return expr

    def _primary(self) -> cast.Expr:
        tok = self._tok
        if tok.kind == "int":
            self._advance()
            suffix = "".join(c for c in tok.text if c in "uUlL").lower()
            return cast.IntLiteral(int(tok.value), suffix=suffix, line=tok.line)  # type: ignore[arg-type]
        if tok.kind == "float":
            self._advance()
            suffix = "f" if tok.text.lower().endswith("f") else ""
            return cast.FloatLiteral(float(tok.value), suffix=suffix, line=tok.line)  # type: ignore[arg-type]
        if tok.kind == "ident":
            self._advance()
            if self._tok.is_punct("(") and not _is_type_name(tok.text):
                self._advance()
                args: list[cast.Expr] = []
                if not self._tok.is_punct(")"):
                    args.append(self._assignment())
                    while self._accept("punct", ","):
                        args.append(self._assignment())
                self._expect("punct", ")")
                return cast.Call(tok.text, tuple(args), line=tok.line)
            return cast.Ident(tok.text, line=tok.line)
        if tok.is_punct("("):
            self._advance()
            expr = self._expression()
            self._expect("punct", ")")
            return expr
        raise ParseError(
            f"unexpected token {tok.text or tok.kind!r}", line=tok.line, col=tok.col
        )
