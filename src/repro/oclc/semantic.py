"""Semantic analysis: symbol resolution and type checking.

Produces a :class:`CheckedProgram` that annotates every expression node
with its static type (in an identity-keyed side table, since AST nodes
are frozen). Both the interpreter and the device models rely on these
annotations: the interpreter for numpy dtype selection, the models for
memory transaction widths.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SemanticError
from ..ocl import types as T
from . import cast

__all__ = [
    "BUILTIN_WORKITEM_FUNCTIONS",
    "BUILTIN_MATH_FUNCTIONS",
    "vector_memory_builtin",
    "Symbol",
    "Scope",
    "CheckedProgram",
    "check",
]

#: Work-item query builtins: name -> (arg count, return type).
BUILTIN_WORKITEM_FUNCTIONS: dict[str, tuple[int, T.Type]] = {
    "get_global_id": (1, T.SIZE_T),
    "get_local_id": (1, T.SIZE_T),
    "get_group_id": (1, T.SIZE_T),
    "get_global_size": (1, T.SIZE_T),
    "get_local_size": (1, T.SIZE_T),
    "get_num_groups": (1, T.SIZE_T),
    "get_work_dim": (0, T.UINT),
}

#: Math builtins: name -> arity. Return type follows the promoted args.
BUILTIN_MATH_FUNCTIONS: dict[str, int] = {
    "min": 2,
    "max": 2,
    "clamp": 3,
    "fabs": 1,
    "abs": 1,
    "sqrt": 1,
    "exp": 1,
    "log": 1,
    "floor": 1,
    "ceil": 1,
    "fma": 3,
    "mad": 3,
    "mul24": 2,
    "mad24": 3,
}

#: Synchronization / misc builtins treated as no-ops by the interpreter.
BUILTIN_VOID_FUNCTIONS: dict[str, int] = {
    "barrier": 1,
    "mem_fence": 1,
}

_VLOAD_RE = re.compile(r"^(vload|vstore)(2|3|4|8|16)$")


def vector_memory_builtin(name: str) -> tuple[str, int] | None:
    """Decode ``vloadN``/``vstoreN`` into ("load"/"store", N), else None."""
    m = _VLOAD_RE.match(name)
    if not m:
        return None
    return ("load" if m.group(1) == "vload" else "store", int(m.group(2)))


_SWIZZLE_XYZW = "xyzw"


@dataclass
class Symbol:
    """A named value in scope."""

    name: str
    type: T.Type
    is_param: bool = False
    is_const: bool = False


class Scope:
    """A lexical scope chain."""

    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self._symbols: dict[str, Symbol] = {}

    def declare(self, sym: Symbol, line: int = 0) -> None:
        if sym.name in self._symbols:
            raise SemanticError(f"redeclaration of {sym.name!r}", line=line)
        self._symbols[sym.name] = sym

    def lookup(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope._symbols:
                return scope._symbols[name]
            scope = scope.parent
        return None

    def child(self) -> "Scope":
        return Scope(self)


@dataclass
class CheckedProgram:
    """A type-checked translation unit.

    ``expr_types`` maps ``id(expr_node) -> Type``; the AST root is kept
    alive here so the identity keys stay valid.
    """

    unit: cast.TranslationUnit
    expr_types: dict[int, T.Type] = field(default_factory=dict)
    param_types: dict[str, dict[str, T.Type]] = field(default_factory=dict)

    def type_of(self, expr: cast.Expr) -> T.Type:
        try:
            return self.expr_types[id(expr)]
        except KeyError:
            raise SemanticError(
                f"expression at line {expr.line} was not type-checked"
            ) from None

    def kernel(self, name: str | None = None) -> cast.FunctionDef:
        return self.unit.kernel(name)


def check(unit: cast.TranslationUnit) -> CheckedProgram:
    """Type-check a translation unit, returning the annotated program."""
    program = CheckedProgram(unit)
    for func in unit.functions:
        _Checker(program, func).run()
    return program


class _Checker:
    def __init__(self, program: CheckedProgram, func: cast.FunctionDef):
        self.program = program
        self.func = func
        self.return_type = (
            T.VOID if func.return_type == "void" else T.parse_type_name(func.return_type)
        )

    def run(self) -> None:
        scope = Scope()
        param_types: dict[str, T.Type] = {}
        for param in self.func.params:
            base = T.parse_type_name(param.type_name)
            ty: T.Type = (
                T.pointer(base, param.address_space) if param.is_pointer else base
            )
            scope.declare(
                Symbol(param.name, ty, is_param=True, is_const="const" in param.qualifiers),
                line=param.line,
            )
            param_types[param.name] = ty
        self.program.param_types[self.func.name] = param_types
        self._check_attributes()
        self._stmt(self.func.body, scope)

    def _check_attributes(self) -> None:
        known = {
            "reqd_work_group_size": 3,
            "work_group_size_hint": 3,
            "num_simd_work_items": 1,
            "num_compute_units": 1,
            "max_work_group_size": 1,
            "opencl_unroll_hint": 1,
            "xcl_pipeline_loop": 0,
            "xcl_pipeline_workitems": 0,
            "xcl_max_memory_ports": 1,
            "xcl_memory_port_data_width": 1,
        }
        for attr in self.func.attributes:
            if attr.name not in known:
                raise SemanticError(
                    f"unknown attribute {attr.name!r}", line=attr.line
                )
            want = known[attr.name]
            if want and len(attr.args) != want:
                raise SemanticError(
                    f"attribute {attr.name!r} takes {want} argument(s), "
                    f"got {len(attr.args)}",
                    line=attr.line,
                )

    # -- statements ---------------------------------------------------------

    def _stmt(self, stmt: cast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, cast.Block):
            inner = scope.child()
            for s in stmt.body:
                self._stmt(s, inner)
        elif isinstance(stmt, cast.DeclStmt):
            ty = T.parse_type_name(stmt.type_name)
            if stmt.init is not None:
                init_ty = self._expr(stmt.init, scope)
                self._require_convertible(init_ty, ty, stmt.line)
            scope.declare(
                Symbol(stmt.name, ty, is_const="const" in stmt.qualifiers),
                line=stmt.line,
            )
        elif isinstance(stmt, cast.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, cast.If):
            self._condition(stmt.cond, scope)
            self._stmt(stmt.then, scope)
            if stmt.other is not None:
                self._stmt(stmt.other, scope)
        elif isinstance(stmt, cast.For):
            inner = scope.child()
            if stmt.init is not None:
                self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._condition(stmt.cond, inner)
            if stmt.step is not None:
                self._expr(stmt.step, inner)
            self._stmt(stmt.body, inner)
        elif isinstance(stmt, cast.While):
            self._condition(stmt.cond, scope)
            self._stmt(stmt.body, scope)
        elif isinstance(stmt, cast.Return):
            if stmt.value is None:
                if self.return_type is not T.VOID:
                    raise SemanticError("missing return value", line=stmt.line)
            else:
                ty = self._expr(stmt.value, scope)
                self._require_convertible(ty, self.return_type, stmt.line)
        elif isinstance(stmt, (cast.Break, cast.Continue, cast.Pragma)):
            pass
        else:  # pragma: no cover - parser produces no other nodes
            raise SemanticError(f"unhandled statement {type(stmt).__name__}")

    def _require_convertible(self, source: T.Type, target: T.Type, line: int) -> None:
        """Implicit conversion rules: numerics convert freely; vectors
        only to the same width; pointers don't convert at all."""
        if source is target:
            return
        if isinstance(target, T.VoidType) or isinstance(source, T.VoidType):
            raise SemanticError(f"cannot convert {source} to {target}", line=line)
        if isinstance(source, T.PointerType) or isinstance(target, T.PointerType):
            raise SemanticError(
                f"cannot implicitly convert {source} to {target}", line=line
            )
        if isinstance(target, T.VectorType):
            if isinstance(source, T.VectorType) and source.width != target.width:
                raise SemanticError(
                    f"vector width mismatch: {source} vs {target}", line=line
                )
            return  # scalar splats and same-width vectors convert
        if isinstance(source, T.VectorType):
            raise SemanticError(
                f"cannot narrow vector {source} to scalar {target}", line=line
            )
        # scalar to scalar: always convertible in C

    def _condition(self, expr: cast.Expr, scope: Scope) -> None:
        ty = self._expr(expr, scope)
        if isinstance(ty, T.VectorType):
            raise SemanticError(
                "condition must be scalar, not a vector", line=expr.line
            )

    # -- expressions ----------------------------------------------------------

    def _expr(self, expr: cast.Expr, scope: Scope) -> T.Type:
        ty = self._expr_inner(expr, scope)
        self.program.expr_types[id(expr)] = ty
        return ty

    def _expr_inner(self, expr: cast.Expr, scope: Scope) -> T.Type:
        if isinstance(expr, cast.IntLiteral):
            if "u" in expr.suffix and "l" in expr.suffix:
                return T.ULONG
            if "l" in expr.suffix:
                return T.LONG
            if "u" in expr.suffix:
                return T.UINT
            return T.INT
        if isinstance(expr, cast.FloatLiteral):
            return T.FLOAT if expr.suffix == "f" else T.DOUBLE
        if isinstance(expr, cast.Ident):
            sym = scope.lookup(expr.name)
            if sym is None:
                raise SemanticError(f"undeclared identifier {expr.name!r}", line=expr.line)
            return sym.type
        if isinstance(expr, cast.Unary):
            base = self._expr(expr.operand, scope)
            if expr.op in ("++", "--", "p++", "p--"):
                if not isinstance(expr.operand, (cast.Ident, cast.Index)):
                    raise SemanticError(
                        f"{expr.op} needs an lvalue", line=expr.line
                    )
                if not base.is_integer():
                    raise SemanticError(
                        f"{expr.op} needs an integer lvalue", line=expr.line
                    )
                return base
            if expr.op == "!":
                return T.INT
            if expr.op == "~" and not base.is_integer():
                raise SemanticError("~ needs an integer operand", line=expr.line)
            if not base.is_numeric():
                raise SemanticError(
                    f"unary {expr.op} on non-numeric {base}", line=expr.line
                )
            return base
        if isinstance(expr, cast.Binary):
            left = self._expr(expr.left, scope)
            right = self._expr(expr.right, scope)
            return self._binary_type(expr.op, left, right, expr.line)
        if isinstance(expr, cast.Assign):
            target = self._expr(expr.target, scope)
            value = self._expr(expr.value, scope)
            sym = (
                scope.lookup(expr.target.name)
                if isinstance(expr.target, cast.Ident)
                else None
            )
            if sym is not None and sym.is_const:
                raise SemanticError(
                    f"assignment to const {sym.name!r}", line=expr.line
                )
            if expr.op != "=":
                self._binary_type(expr.op[:-1], target, value, expr.line)
            self._require_convertible(value, target, expr.line)
            return target
        if isinstance(expr, cast.Conditional):
            self._condition(expr.cond, scope)
            then = self._expr(expr.then, scope)
            other = self._expr(expr.other, scope)
            try:
                return T.common_numeric_type(then, other)
            except Exception as exc:
                raise SemanticError(str(exc), line=expr.line) from exc
        if isinstance(expr, cast.Call):
            return self._call_type(expr, scope)
        if isinstance(expr, cast.Index):
            base = self._expr(expr.base, scope)
            index = self._expr(expr.index, scope)
            if not isinstance(base, T.PointerType):
                raise SemanticError(
                    f"cannot index non-pointer type {base}", line=expr.line
                )
            if not index.is_integer():
                raise SemanticError(
                    f"array index must be integer, got {index}", line=expr.line
                )
            return base.pointee
        if isinstance(expr, cast.Swizzle):
            base = self._expr(expr.base, scope)
            return self._swizzle_type(base, expr.components, expr.line)
        if isinstance(expr, cast.Cast):
            self._expr(expr.operand, scope)
            return T.parse_type_name(expr.type_name)
        if isinstance(expr, cast.VectorLiteral):
            ty = T.parse_type_name(expr.type_name)
            if not isinstance(ty, T.VectorType):
                raise SemanticError(
                    f"{expr.type_name} is not a vector type", line=expr.line
                )
            if len(expr.elements) not in (1, ty.width):
                raise SemanticError(
                    f"vector literal for {ty} needs 1 or {ty.width} elements, "
                    f"got {len(expr.elements)}",
                    line=expr.line,
                )
            for el in expr.elements:
                el_ty = self._expr(el, scope)
                if not el_ty.is_numeric():
                    raise SemanticError(
                        "vector literal element must be numeric", line=el.line
                    )
            return ty
        raise SemanticError(
            f"unhandled expression {type(expr).__name__}", line=expr.line
        )

    def _binary_type(self, op: str, left: T.Type, right: T.Type, line: int) -> T.Type:
        if op in ("&&", "||"):
            return T.INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            try:
                common = T.common_numeric_type(left, right)
            except Exception as exc:
                raise SemanticError(str(exc), line=line) from exc
            if isinstance(common, T.VectorType):
                # OpenCL vector compare yields a signed integer vector.
                return T.vector("int" if common.kind.size <= 4 else "long", common.width)
            return T.INT
        if op in ("%", "&", "|", "^", "<<", ">>"):
            if not (left.is_integer() and right.is_integer()):
                raise SemanticError(
                    f"operator {op} needs integer operands, got {left} and {right}",
                    line=line,
                )
        if not (left.is_numeric() and right.is_numeric()):
            raise SemanticError(
                f"operator {op} on non-numeric types {left}, {right}", line=line
            )
        try:
            return T.common_numeric_type(left, right)
        except Exception as exc:
            raise SemanticError(str(exc), line=line) from exc

    def _call_type(self, expr: cast.Call, scope: Scope) -> T.Type:
        name = expr.func
        arg_types = [self._expr(a, scope) for a in expr.args]
        vec_mem = vector_memory_builtin(name)
        if vec_mem is not None:
            return self._vector_memory_type(expr, vec_mem, arg_types)
        if name in BUILTIN_WORKITEM_FUNCTIONS:
            arity, ret = BUILTIN_WORKITEM_FUNCTIONS[name]
            if len(arg_types) != arity:
                raise SemanticError(
                    f"{name} takes {arity} argument(s)", line=expr.line
                )
            for ty in arg_types:
                if not ty.is_integer():
                    raise SemanticError(
                        f"{name} argument must be an integer", line=expr.line
                    )
            return ret
        if name in BUILTIN_MATH_FUNCTIONS:
            arity = BUILTIN_MATH_FUNCTIONS[name]
            if len(arg_types) != arity:
                raise SemanticError(
                    f"{name} takes {arity} argument(s)", line=expr.line
                )
            result = arg_types[0]
            for ty in arg_types[1:]:
                try:
                    result = T.common_numeric_type(result, ty)
                except Exception as exc:
                    raise SemanticError(str(exc), line=expr.line) from exc
            if name in ("sqrt", "exp", "log", "fma", "mad") and result.is_integer():
                result = T.DOUBLE if not isinstance(result, T.VectorType) else T.vector(
                    "double", result.width
                )
            return result
        if name in BUILTIN_VOID_FUNCTIONS:
            return T.VOID
        # user helper function defined in the same unit
        for func in self.program.unit.functions:
            if func.name == name:
                if len(arg_types) != len(func.params):
                    raise SemanticError(
                        f"{name} takes {len(func.params)} argument(s)", line=expr.line
                    )
                return (
                    T.VOID
                    if func.return_type == "void"
                    else T.parse_type_name(func.return_type)
                )
        raise SemanticError(f"unknown function {name!r}", line=expr.line)

    def _vector_memory_type(
        self,
        expr: cast.Call,
        vec_mem: tuple[str, int],
        arg_types: list[T.Type],
    ) -> T.Type:
        """Type-check ``vloadN(offset, p)`` / ``vstoreN(data, offset, p)``."""
        kind, width = vec_mem
        if kind == "load":
            if len(arg_types) != 2:
                raise SemanticError(
                    f"vload{width} takes (offset, pointer)", line=expr.line
                )
            offset_ty, ptr_ty = arg_types
        else:
            if len(arg_types) != 3:
                raise SemanticError(
                    f"vstore{width} takes (data, offset, pointer)", line=expr.line
                )
            data_ty, offset_ty, ptr_ty = arg_types
            if not (isinstance(data_ty, T.VectorType) and data_ty.width == width):
                raise SemanticError(
                    f"vstore{width} data must be a width-{width} vector, "
                    f"got {data_ty}",
                    line=expr.line,
                )
        if not offset_ty.is_integer():
            raise SemanticError("vload/vstore offset must be integer", line=expr.line)
        if not isinstance(ptr_ty, T.PointerType) or not isinstance(
            ptr_ty.pointee, T.ScalarType
        ):
            raise SemanticError(
                "vload/vstore pointer must point at scalars", line=expr.line
            )
        if kind == "store":
            base = expr.args[0]
            data_kind = self.program.type_of(base)
            assert isinstance(data_kind, T.VectorType)
            if data_kind.kind.name != ptr_ty.pointee.kind.name:
                raise SemanticError(
                    f"vstore{width}: vector of {data_kind.kind.name} into "
                    f"{ptr_ty.pointee} buffer",
                    line=expr.line,
                )
            return T.VOID
        return T.vector(ptr_ty.pointee.kind.name, width)

    def _swizzle_type(self, base: T.Type, components: str, line: int) -> T.Type:
        if not isinstance(base, T.VectorType):
            raise SemanticError(
                f"swizzle on non-vector type {base}", line=line
            )
        if components in ("lo", "hi", "even", "odd"):
            half = base.width // 2
            return (
                T.scalar(base.kind.name) if half == 1 else T.vector(base.kind.name, half)
            )
        indices = swizzle_indices(components, base.width, line)
        if len(indices) == 1:
            return T.scalar(base.kind.name)
        if len(indices) not in T.VECTOR_WIDTHS:
            raise SemanticError(
                f"swizzle produces invalid width {len(indices)}", line=line
            )
        return T.vector(base.kind.name, len(indices))


def swizzle_indices(components: str, width: int, line: int = 0) -> tuple[int, ...]:
    """Decode swizzle component text into lane indices.

    Supports ``xyzw`` and the ``sN`` hex-numbered form.
    """
    if components in ("lo", "hi", "even", "odd"):
        half = width // 2
        if components == "lo":
            return tuple(range(half))
        if components == "hi":
            return tuple(range(half, width))
        if components == "even":
            return tuple(range(0, width, 2))
        return tuple(range(1, width, 2))
    if components.startswith("s") and len(components) > 1:
        try:
            indices = tuple(int(c, 16) for c in components[1:])
        except ValueError:
            raise SemanticError(
                f"bad swizzle {components!r}", line=line
            ) from None
    else:
        try:
            indices = tuple(_SWIZZLE_XYZW.index(c) for c in components)
        except ValueError:
            raise SemanticError(
                f"bad swizzle {components!r}", line=line
            ) from None
    for idx in indices:
        if idx >= width:
            raise SemanticError(
                f"swizzle index {idx} out of range for width {width}", line=line
            )
    return indices
