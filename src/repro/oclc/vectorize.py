"""Whole-NDRange array execution with precomputed launch plans.

The compiled-closure lane (:mod:`repro.oclc.compile`) already evaluates
a kernel body as numpy arrays over the flattened iteration domain, but
it rebuilds the domain environment (``arange`` + mixed-radix decode) on
*every* launch, re-evaluates every index expression, bounds-checks every
access with full ``np.any`` passes, and gathers/scatters through fancy
integer indexing. For a STREAM kernel those overheads dwarf the four
vector ops the launch actually performs — and a benchmark point repeats
the same launch ``warmup + ntimes`` times.

:class:`VectorKernel` is the third driver over the same specializer
semantics (one implementation, three drivers: interpret /
compiled-scalar / vectorized-array). It exploits one observation: in an
analyzable kernel every load/store **index** is a pure function of the
iteration domain — ``gid0``, counted-loop variables and constants —
never of buffer contents or scalar arguments. So indices can be
evaluated *once per launch shape*, bounds-checked once, and lowered to
native strided slices whenever they are affine in the flattened domain
(``c[gid] = a[gid]`` becomes ``c_view[0:N:1] = a_view[0:N:1]``, no index
vector materialized at all). The per-``(n_items, buffer sizes)`` result
is cached as a launch *plan*; a repeated launch is just the statement
closures over pre-lowered selections.

Eligibility is conservative and layered on the specializer's own gate
(no data-dependent control flow, no read/write parameter overlap, no
loop-carried state beyond sum reductions — see
:class:`~repro.oclc.specialize.SpecializedKernel`):

* every load/store index and vload/vstore offset must be **domain-pure**
  (reference only domain variables, domain-pure locals, literals and
  builtin calls thereof), so plans are launch-shape cacheable;
* no kernel argument may alias another in a way that crosses the
  read/write split (checked per launch with ``np.may_share_memory`` —
  slice loads are *views*, so aliasing that the gather-based lane
  tolerates must fall back here).

Anything else raises :class:`~repro.errors.UnsupportedKernelError` and
the caller (:meth:`repro.ocl.queue.CommandQueue._execute`) falls back to
the compiled-closure lane, then the interpreter.

:meth:`VectorKernel.run_batch` additionally stacks *B* same-shape
argument sets into one ``(B, n)`` array pass — the engine uses it to
batch semantically identical sweep points (FPGA attribute variants:
``num_simd_work_items``, ``num_compute_units``, …) from one scheduler
slot. Element-wise semantics make the stacked pass bit-identical to B
per-point runs; kernels with reductions or an epilogue are refused.

The semantics are shared, not re-implemented: every closure calls the
module-level primitives of :mod:`repro.oclc.specialize`, and the
differential suite (``tests/test_vectorize_equivalence.py``) proves all
three lanes bit-identical on the full conformance grid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..errors import UnsupportedKernelError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..ocl import types as T
from . import cast
from .compile import _Compiler, _Ctx
from .semantic import (
    BUILTIN_MATH_FUNCTIONS,
    BUILTIN_WORKITEM_FUNCTIONS,
    CheckedProgram,
    vector_memory_builtin,
)
from .specialize import (
    SpecializedKernel,
    bind_arguments,
    build_domain_env,
    cast_value,
    specialize,
)

__all__ = ["VectorKernel", "vectorize_kernel"]

#: launch plans kept per kernel (FIFO); a sweep rarely cycles through
#: more than a couple of distinct (n_items, buffer-size) shapes at once
_PLAN_CACHE_SIZE = 4


def vectorize_kernel(
    program: CheckedProgram, kernel_name: str | None = None
) -> "VectorKernel":
    """Build the array-lane executor, or raise if the kernel is ineligible."""
    with obs_trace.span("fastpath.vectorize", "fastpath") as span:
        spec = specialize(program, kernel_name)
        kernel = VectorKernel(spec)
        span.set(kernel=kernel.ir.name, sites=len(kernel._sites))
    obs_metrics.count("fastpath.kernels.vectorized")
    return kernel


@dataclass
class _Site:
    """One memory access whose selection is precomputed per plan."""

    param: str
    width: int | None  # None: scalar-element view; int: (rows, width) view
    index: Callable[["_VCtx"], object]
    line: int


@dataclass
class _Plan:
    """Everything launch-shape-dependent, computed once and cached."""

    env_base: dict[str, object]
    sel: list[object]  # per _Site: slice | np.ndarray selection
    sel_len: list[int]  # per _Site: selected rows (-1: not a 1-D stream)


class _VCtx(_Ctx):
    """Per-launch state: compiled-lane ctx plus plan selections/views."""

    __slots__ = ("views", "sel", "sel_len", "pre")


def _lower_selection(idx: np.ndarray) -> object:
    """Replace a constant-stride index vector with a native slice.

    A slice selects the same elements in the same order, so values are
    bit-identical — but numpy serves it as a strided view instead of a
    gather/scatter through an index vector. Non-monotonic or irregular
    indices (e.g. the strided variant's ``(g % NI) * NJ + g / NI``
    permutation) stay as precomputed fancy indices.
    """
    if idx.size == 0:
        return slice(0, 0, 1)
    if idx.ndim != 1:
        return idx
    first = int(idx[0])
    if idx.size == 1:
        return slice(first, first + 1, 1)
    steps = np.diff(idx)
    step = int(steps[0])
    if step > 0 and bool(np.all(steps == step)):
        return slice(first, int(idx[-1]) + step, step)
    return idx


def _store_selected(
    view: np.ndarray, pre: tuple, sel: object, sel_len: int, value: object
) -> None:
    """Scatter ``value`` into ``view[pre + (sel,)]``.

    Mirrors :func:`~repro.oclc.specialize.store_to_view` /
    :func:`~repro.oclc.specialize.vector_store` semantics exactly — a
    1-D value whose length matches the selection is a scalar *stream*
    and broadcasts across vector lanes — extended over the optional
    leading batch axis (``pre == (slice(None),)``).
    """
    arr = np.asarray(value)
    if view.ndim - len(pre) == 2:  # vector-element view
        if arr.ndim == 1 and arr.shape[0] == sel_len:
            arr = arr[:, None]
        elif pre and arr.ndim == 2 and arr.shape == (view.shape[0], sel_len):
            arr = arr[..., None]
    view[pre + (sel,)] = arr


class VectorKernel:
    """Runs a kernel as statement closures over pre-lowered selections."""

    def __init__(self, spec: SpecializedKernel):
        self.ir = spec.ir
        self.program = spec.program
        body = spec._body
        self._sites: list[_Site] = []
        self._pure_decls: list[tuple[str, Callable[[_VCtx], object] | None, T.Type]] = []
        self._pure_names: set[str] = {"gid0"} | {loop.var for loop in self.ir.loops}
        self._declared: set[str] = set()
        self._batchable = not body.reductions and not body.epilogue
        self._plans: dict[tuple, _Plan] = {}
        self._writes = tuple(sorted({a.param for a in self.ir.writes}))
        self._reads = tuple(sorted({a.param for a in self.ir.reads}))

        comp = _VecCompiler(self.program, self)
        steps: list[Callable[[_VCtx], object]] = []
        by_stmt = {id(r.stmt): r for r in body.reductions}

        def add(stmt: cast.Stmt) -> None:
            red = by_stmt.get(id(stmt))
            if red is not None:
                steps.append(comp.reduction(red.var, red.value))
                return
            if isinstance(stmt, cast.DeclStmt) and self._classify_decl(stmt, comp):
                return
            self._refuse_pure_writes(stmt)
            steps.append(comp.stmt(stmt))

        for decl in body.outer_decls:
            add(decl)
        for stmt in body.inner:
            add(stmt)
        for stmt in body.epilogue:
            add(stmt)
        self._steps = steps
        # views needed per launch, keyed (param, width-or-None)
        self._view_keys = tuple(
            sorted({(site.param, site.width) for site in self._sites},
                   key=lambda k: (k[0], k[1] or 0))
        )

    # -- compile-time classification ------------------------------------------

    def _classify_decl(self, decl: cast.DeclStmt, comp: "_VecCompiler") -> bool:
        """Plan-compute a domain-pure local; returns False to run per launch."""
        if decl.name in self._pure_names or decl.name in self._declared:
            raise UnsupportedKernelError(
                f"duplicate declaration of {decl.name!r} at line {decl.line}"
            )
        self._declared.add(decl.name)
        if decl.init is not None and not self._is_pure(decl.init):
            return False
        ty = T.parse_type_name(decl.type_name)
        fn = comp.expr(decl.init) if decl.init is not None else None
        self._pure_decls.append((decl.name, fn, ty))
        self._pure_names.add(decl.name)
        return True

    def _refuse_pure_writes(self, stmt: cast.Stmt) -> None:
        """A runtime statement may not reassign a plan-computed local."""
        def walk(e: cast.Expr) -> None:
            if isinstance(e, cast.Assign):
                if isinstance(e.target, cast.Ident) and e.target.name in self._pure_names:
                    raise UnsupportedKernelError(
                        f"assignment to domain-pure local {e.target.name!r} "
                        f"at line {e.line}"
                    )
                walk(e.value)
            elif isinstance(e, cast.Binary):
                walk(e.left)
                walk(e.right)
            elif isinstance(e, cast.Unary):
                walk(e.operand)
            elif isinstance(e, cast.Conditional):
                walk(e.cond)
                walk(e.then)
                walk(e.other)
            elif isinstance(e, cast.Call):
                for a in e.args:
                    walk(a)
            elif isinstance(e, cast.Index):
                walk(e.base)
                walk(e.index)
            elif isinstance(e, cast.Swizzle):
                walk(e.base)
            elif isinstance(e, cast.Cast):
                walk(e.operand)
            elif isinstance(e, cast.VectorLiteral):
                for el in e.elements:
                    walk(el)

        if isinstance(stmt, cast.ExprStmt):
            walk(stmt.expr)

    def _is_pure(self, expr: cast.Expr) -> bool:
        """Is ``expr`` a pure function of the iteration domain?"""
        if isinstance(expr, (cast.IntLiteral, cast.FloatLiteral)):
            return True
        if isinstance(expr, cast.Ident):
            return expr.name in self._pure_names
        if isinstance(expr, cast.Unary):
            return expr.op not in ("++", "--", "p++", "p--") and self._is_pure(
                expr.operand
            )
        if isinstance(expr, cast.Binary):
            return self._is_pure(expr.left) and self._is_pure(expr.right)
        if isinstance(expr, cast.Conditional):
            return (
                self._is_pure(expr.cond)
                and self._is_pure(expr.then)
                and self._is_pure(expr.other)
            )
        if isinstance(expr, cast.Cast):
            return self._is_pure(expr.operand)
        if isinstance(expr, cast.Swizzle):
            return self._is_pure(expr.base)
        if isinstance(expr, cast.VectorLiteral):
            return all(self._is_pure(el) for el in expr.elements)
        if isinstance(expr, cast.Call):
            if vector_memory_builtin(expr.func) is not None:
                return False  # touches a buffer
            if expr.func in BUILTIN_WORKITEM_FUNCTIONS | BUILTIN_MATH_FUNCTIONS:
                return all(self._is_pure(a) for a in expr.args)
            return False
        return False  # Index (buffer load), Assign, anything unknown

    # -- plans ------------------------------------------------------------------

    def _element_width(self, param: str, line: int) -> int | None:
        types = self.program.param_types[self.ir.name]
        ty = types.get(param)
        if not isinstance(ty, T.PointerType):
            raise UnsupportedKernelError(
                f"indexed parameter {param!r} at line {line} is not a buffer"
            )
        pointee = ty.pointee
        if isinstance(pointee, T.VectorType):
            return pointee.width
        return None

    def _plan_for(self, n_items: int, sizes: Mapping[str, int]) -> _Plan:
        key = (n_items, tuple(sorted(sizes.items())))
        plan = self._plans.get(key)
        if plan is not None:
            return plan
        plan = self._build_plan(n_items, sizes)
        if len(self._plans) >= _PLAN_CACHE_SIZE:
            self._plans.pop(next(iter(self._plans)))
        self._plans[key] = plan
        return plan

    def _build_plan(self, n_items: int, sizes: Mapping[str, int]) -> _Plan:
        env = build_domain_env(self.ir, n_items)
        pctx = _VCtx(env, {}, n_items)
        for name, fn, ty in self._pure_decls:
            if fn is None:
                value: object = (
                    np.zeros(ty.width, dtype=ty.dtype)
                    if isinstance(ty, T.VectorType)
                    else ty.dtype.type(0)  # type: ignore[union-attr]
                )
            else:
                value = cast_value(fn(pctx), ty)
            env[name] = value
        sel: list[object] = []
        sel_len: list[int] = []
        for site in self._sites:
            size = sizes[site.param]
            width = site.width or 1
            if size % width:
                raise UnsupportedKernelError(
                    f"buffer {site.param!r} size {size} not divisible by "
                    f"vector width {width}"
                )
            rows = size // width
            idx = np.asarray(site.index(pctx), dtype=np.int64)
            if np.any(idx < 0) or np.any(idx >= rows):
                raise UnsupportedKernelError(
                    f"out-of-bounds access to {site.param!r} at line {site.line}"
                )
            sel_len.append(int(idx.shape[0]) if idx.ndim == 1 else -1)
            sel.append(_lower_selection(idx))
        return _Plan(env_base=env, sel=sel, sel_len=sel_len)

    # -- launches ----------------------------------------------------------------

    @staticmethod
    def _n_items(global_size: tuple[int, ...] | int) -> int:
        if isinstance(global_size, int):
            global_size = (global_size,)
        if len(global_size) != 1:
            raise UnsupportedKernelError(
                "vectorized execution supports 1-D NDRanges only"
            )
        return int(global_size[0])

    def _check_hazards(
        self, buffer_sets: list[dict[str, tuple[np.ndarray, T.Type]]]
    ) -> None:
        """Refuse launches where slice *views* could observe a store.

        The gather-based lanes copy on load; this lane reads through
        views, so an output array aliasing an input (or another output,
        across batch instances) must fall back.
        """
        write_arrays: list[np.ndarray] = []
        for buffers in buffer_sets:
            for w in self._writes:
                warr = buffers[w][0]
                for r in self._reads:
                    if np.may_share_memory(warr, buffers[r][0]):
                        raise UnsupportedKernelError(
                            f"output {w!r} may alias input {r!r}; "
                            "array-lane views are unsafe"
                        )
                write_arrays.append(warr)
        for i, a in enumerate(write_arrays):
            for b in write_arrays[i + 1 :]:
                if np.may_share_memory(a, b):
                    raise UnsupportedKernelError(
                        "output buffers alias each other; array-lane "
                        "store order is not defined"
                    )

    def _make_views(
        self,
        buffers: Mapping[str, tuple[np.ndarray, T.Type]],
        *,
        batch: bool,
    ) -> dict[tuple[str, int | None], np.ndarray]:
        views: dict[tuple[str, int | None], np.ndarray] = {}
        for key in self._view_keys:
            name, width = key
            arr = buffers[name][0]
            if width is None:
                views[key] = arr
            elif batch:
                views[key] = arr.reshape(arr.shape[0], -1, width)
            else:
                views[key] = arr.reshape(-1, width)
        return views

    def run(
        self,
        global_size: tuple[int, ...] | int,
        args: Mapping[str, object],
        local_size: tuple[int, ...] | None = None,
    ) -> None:
        """Execute the kernel. Signature mirrors the interpreter's."""
        n_items = self._n_items(global_size)
        scalars: dict[str, object] = {}
        buffers = bind_arguments(self.program, self.ir, args, scalars)
        self._check_hazards([buffers])
        sizes = {name: arr.size for name, (arr, _ty) in buffers.items()}
        plan = self._plan_for(n_items, sizes)
        env = dict(plan.env_base)
        env.update(scalars)
        ctx = _VCtx(env, dict(buffers), n_items)
        ctx.views = self._make_views(buffers, batch=False)
        ctx.sel = plan.sel
        ctx.sel_len = plan.sel_len
        ctx.pre = ()
        for step in self._steps:
            step(ctx)

    def run_batch(
        self,
        global_size: tuple[int, ...] | int,
        calls: list[Mapping[str, object]],
        local_size: tuple[int, ...] | None = None,
    ) -> None:
        """Execute B same-shape argument sets as one stacked array pass.

        Bit-identical to running :meth:`run` once per call: statements
        are element-wise over the domain, so adding a leading batch axis
        commutes with every operation. Refuses kernels with reductions
        or an epilogue (their cross-domain sums do not commute with the
        batch axis) and argument sets that differ in scalar values or
        buffer shapes.
        """
        if not self._batchable:
            raise UnsupportedKernelError(
                f"kernel {self.ir.name!r} has reductions or an epilogue; "
                "batched execution is per-point only"
            )
        if not calls:
            return
        if len(calls) == 1:
            self.run(global_size, calls[0], local_size)
            return
        n_items = self._n_items(global_size)
        bound: list[tuple[dict[str, object], dict[str, tuple[np.ndarray, T.Type]]]] = []
        for call in calls:
            scalars: dict[str, object] = {}
            buffers = bind_arguments(self.program, self.ir, call, scalars)
            bound.append((scalars, buffers))
        scalars0, buffers0 = bound[0]
        for scalars, buffers in bound[1:]:
            for name, value in scalars0.items():
                if not np.array_equal(
                    np.asarray(value), np.asarray(scalars[name])
                ):
                    raise UnsupportedKernelError(
                        f"scalar argument {name!r} differs across the batch"
                    )
            for name, (arr0, _ty) in buffers0.items():
                arr = buffers[name][0]
                if arr.shape != arr0.shape or arr.dtype != arr0.dtype:
                    raise UnsupportedKernelError(
                        f"buffer {name!r} shape/dtype differs across the batch"
                    )
        self._check_hazards([buffers for _, buffers in bound])
        sizes = {name: arr.size for name, (arr, _ty) in buffers0.items()}
        plan = self._plan_for(n_items, sizes)
        stacked: dict[str, tuple[np.ndarray, T.Type]] = {
            name: (
                np.stack([buffers[name][0] for _, buffers in bound]),
                element,
            )
            for name, (_, element) in buffers0.items()
        }
        env = dict(plan.env_base)
        env.update(scalars0)
        ctx = _VCtx(env, stacked, n_items)
        ctx.views = self._make_views(stacked, batch=True)
        ctx.sel = plan.sel
        ctx.sel_len = plan.sel_len
        ctx.pre = (slice(None),)
        for step in self._steps:
            step(ctx)
        for name in self._writes:
            out = stacked[name][0]
            for i, (_, buffers) in enumerate(bound):
                buffers[name][0][:] = out[i]
        obs_metrics.count("fastpath.batch.instances", len(calls))


class _VecCompiler(_Compiler):
    """The closure compiler, with memory sites routed through the plan.

    Everything except loads/stores reuses :class:`~repro.oclc.compile._Compiler`
    verbatim — same primitives, same closures, bit-identical values. The
    memory overrides require domain-pure indices, register a
    :class:`_Site`, and emit closures that index pre-built views with
    pre-lowered selections (no per-launch index evaluation, no
    per-launch bounds check).
    """

    def __init__(self, program: CheckedProgram, owner: VectorKernel):
        super().__init__(program)
        self.owner = owner

    def _site(
        self, param: str, width: int | None, index_expr: cast.Expr, line: int
    ) -> int:
        if not self.owner._is_pure(index_expr):
            raise UnsupportedKernelError(
                f"index into {param!r} at line {line} is not a pure function "
                "of the iteration domain"
            )
        site_id = len(self.owner._sites)
        self.owner._sites.append(
            _Site(param=param, width=width, index=self.expr(index_expr), line=line)
        )
        return site_id

    def _load(self, expr: cast.Index):
        if not isinstance(expr.base, cast.Ident):
            raise UnsupportedKernelError(f"indirect load at line {expr.line}")
        name, line = expr.base.name, expr.line
        width = self.owner._element_width(name, line)
        site = self._site(name, width, expr.index, line)
        view_key = (name, width)

        def run_load(ctx: _VCtx) -> object:
            return ctx.views[view_key][ctx.pre + (ctx.sel[site],)]

        return run_load

    def _store(self, target: cast.Index):
        if not isinstance(target.base, cast.Ident):
            raise UnsupportedKernelError(f"indirect store at line {target.line}")
        name, line = target.base.name, target.line
        width = self.owner._element_width(name, line)
        site = self._site(name, width, target.index, line)
        view_key = (name, width)

        def run_store(ctx: _VCtx, value: object) -> None:
            _store_selected(
                ctx.views[view_key], ctx.pre, ctx.sel[site], ctx.sel_len[site], value
            )

        return run_store

    def _vector_memory(self, expr: cast.Call, vec_mem: tuple[str, int]):
        kind, width = vec_mem
        ptr_expr = expr.args[-1]
        if not isinstance(ptr_expr, cast.Ident):
            raise UnsupportedKernelError(
                f"vload/vstore through a computed pointer at line {expr.line}"
            )
        name, line = ptr_expr.name, expr.line
        # an explicit-width view, independent of the element type
        self.owner._element_width(name, line)  # must be a buffer
        view_key = (name, width)
        if kind == "load":
            site = self._site(name, width, expr.args[0], line)

            def run_vload(ctx: _VCtx) -> object:
                return ctx.views[view_key][ctx.pre + (ctx.sel[site],)]

            return run_vload
        data_fn = self.expr(expr.args[0])
        site = self._site(name, width, expr.args[1], line)

        def run_vstore(ctx: _VCtx) -> object:
            _store_selected(
                ctx.views[view_key],
                ctx.pre,
                ctx.sel[site],
                ctx.sel_len[site],
                data_fn(ctx),
            )
            return None

        return run_vstore
