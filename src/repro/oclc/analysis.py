"""Static analysis: extract a device-model-facing IR from checked kernels.

The device performance models never execute kernel code; they consume a
:class:`KernelIR` describing

* the **launch shape** the kernel expects (NDRange work-items vs a
  single work-item with a flat or nested loop — the paper's
  "loop management" parameter);
* the **loop nest** (induction variables, constant-resolved trip
  counts, unroll factors);
* every **global-memory access** (which argument, read or write,
  element width, and the index expression), plus an affine
  classification giving the per-loop-variable stride;
* kernel **attributes** (``reqd_work_group_size``,
  ``num_simd_work_items``, ``num_compute_units``, the ``xcl_*``
  SDAccel attributes);
* an **arithmetic intensity** estimate (ALU ops per innermost
  iteration), used by models to decide compute- vs memory-boundedness.

Index expressions that are not affine (e.g. ``gid % C`` remappings) are
still usable: :func:`index_stream` evaluates any supported index
expression *numerically*, vectorized over the iteration domain, and
:func:`classify_stride` falls back to sampling the stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

import numpy as np

from ..errors import UnsupportedKernelError
from ..ocl import types as T
from . import cast
from .semantic import (
    BUILTIN_WORKITEM_FUNCTIONS,
    CheckedProgram,
    vector_memory_builtin,
)

__all__ = [
    "LoopMode",
    "LoopInfo",
    "AffineIndex",
    "MemAccess",
    "KernelIR",
    "analyze",
    "index_stream",
    "classify_stride",
]


class LoopMode(enum.Enum):
    """The paper's "kernel loop management" axis."""

    NDRANGE = "ndrange"
    FLAT = "flat"
    NESTED = "nested"

    def __str__(self) -> str:  # pragma: no cover - cosmetics
        return self.value


@dataclass(frozen=True)
class LoopInfo:
    """One counted loop of the kernel's loop nest (outermost first)."""

    var: str
    start: int
    bound: int
    step: int
    unroll: int = 1
    depth: int = 0

    @property
    def trip_count(self) -> int:
        if self.step <= 0:
            raise UnsupportedKernelError(f"non-positive loop step in {self.var}")
        if self.bound <= self.start:
            return 0
        return (self.bound - self.start + self.step - 1) // self.step


@dataclass(frozen=True)
class AffineIndex:
    """``sum(coeffs[v] * v) + const`` over loop/gid variables, if affine."""

    coeffs: Mapping[str, int]
    const: int
    is_affine: bool = True

    def stride_of(self, var: str) -> int:
        return int(self.coeffs.get(var, 0))


@dataclass(frozen=True)
class MemAccess:
    """One static global-memory access site in the kernel body."""

    param: str
    element: T.Type
    index: cast.Expr
    is_write: bool
    affine: AffineIndex
    line: int = 0
    #: number of counted loops enclosing the access site (0 = outside
    #: the loop nest, e.g. a reduction epilogue store)
    depth: int = 0

    @property
    def element_bytes(self) -> int:
        return self.element.size

    @property
    def vector_width(self) -> int:
        return self.element.width if isinstance(self.element, T.VectorType) else 1


@dataclass
class KernelIR:
    """Everything a device model needs to cost a kernel."""

    name: str
    program: CheckedProgram
    func: cast.FunctionDef
    loop_mode: LoopMode
    loops: tuple[LoopInfo, ...]
    accesses: tuple[MemAccess, ...]
    attributes: dict[str, tuple[int, ...]] = field(default_factory=dict)
    alu_ops_per_iteration: int = 0
    mul_ops_per_iteration: int = 0
    uses_double: bool = False
    has_control_flow: bool = False
    gid_vars: tuple[str, ...] = ()

    @property
    def reads(self) -> tuple[MemAccess, ...]:
        return tuple(a for a in self.accesses if not a.is_write)

    @property
    def writes(self) -> tuple[MemAccess, ...]:
        return tuple(a for a in self.accesses if a.is_write)

    @property
    def vector_width(self) -> int:
        """Widest vector element among global accesses (1 = scalar)."""
        return max((a.vector_width for a in self.accesses), default=1)

    @property
    def unroll_factor(self) -> int:
        """Innermost-loop unroll factor (1 when not unrolled/ndrange)."""
        inner = self.innermost_loop
        if inner is None:
            return 1
        hint = self.attributes.get("opencl_unroll_hint")
        if hint:
            return max(1, hint[0])
        return max(1, inner.unroll)

    @property
    def innermost_loop(self) -> Optional[LoopInfo]:
        return self.loops[-1] if self.loops else None

    def iterations_per_work_item(self) -> int:
        total = 1
        for loop in self.loops:
            total *= loop.trip_count
        return total

    def bytes_per_iteration(self) -> int:
        """Global-memory traffic of one innermost iteration (all accesses)."""
        return sum(a.element_bytes for a in self.accesses)

    def elements_per_iteration(self) -> int:
        """Scalar words touched per innermost iteration."""
        return sum(a.vector_width for a in self.accesses)


# ---------------------------------------------------------------------------
# Analysis entry point
# ---------------------------------------------------------------------------


def analyze(program: CheckedProgram, kernel_name: str | None = None) -> KernelIR:
    """Build the :class:`KernelIR` for a kernel of a checked program."""
    func = program.kernel(kernel_name)
    analyzer = _Analyzer(program, func)
    return analyzer.run()


class _Analyzer:
    def __init__(self, program: CheckedProgram, func: cast.FunctionDef):
        self.program = program
        self.func = func
        self.consts: dict[str, int] = {}
        self.gid_aliases: dict[str, str] = {}  # local name -> "gid0"/"gid1"/"gid2"
        self.expr_aliases: dict[str, "cast.Expr"] = {}  # local name -> defining expr
        self.loops: list[LoopInfo] = []
        self.accesses: list[MemAccess] = []
        self.alu_ops = 0
        self.mul_ops = 0
        self.has_control_flow = False
        self.uses_gid_directly = False

    def run(self) -> KernelIR:
        self._walk_stmt(self.func.body, depth=0)
        attrs = {a.name: a.args for a in self.func.attributes}
        gid_vars = tuple(sorted(set(self.gid_aliases.values())))
        if self.uses_gid_directly and "gid0" not in gid_vars:
            gid_vars = tuple(sorted(set(gid_vars) | {"gid0"}))
        mode = self._loop_mode(gid_vars)
        program = self.program
        uses_double = any(
            isinstance(a.element, (T.ScalarType, T.VectorType))
            and a.element.is_float()
            and a.element.kind.size == 8  # type: ignore[union-attr]
            for a in self.accesses
        )
        return KernelIR(
            name=self.func.name,
            program=program,
            func=self.func,
            loop_mode=mode,
            loops=tuple(self.loops),
            accesses=tuple(self.accesses),
            attributes=attrs,
            alu_ops_per_iteration=self.alu_ops,
            mul_ops_per_iteration=self.mul_ops,
            uses_double=uses_double,
            has_control_flow=self.has_control_flow,
            gid_vars=gid_vars,
        )

    def _loop_mode(self, gid_vars: tuple[str, ...]) -> LoopMode:
        counted = len(self.loops)
        if counted == 0:
            return LoopMode.NDRANGE
        if counted == 1:
            return LoopMode.FLAT
        return LoopMode.NESTED

    # -- statement walk -------------------------------------------------------

    def _walk_stmt(self, stmt: cast.Stmt, depth: int) -> None:
        if isinstance(stmt, cast.Block):
            for s in stmt.body:
                self._walk_stmt(s, depth)
        elif isinstance(stmt, cast.DeclStmt):
            self._note_decl(stmt)
            if stmt.init is not None:
                # integer locals are (almost always) index computations;
                # their arithmetic belongs to address generation, not the
                # data path, so it does not count toward ALU/DSP cost
                ty = T.parse_type_name(stmt.type_name)
                is_index_math = isinstance(ty, T.ScalarType) and ty.is_integer()
                self._walk_expr(stmt.init, depth, addr=is_index_math)
        elif isinstance(stmt, cast.ExprStmt):
            self._walk_expr(stmt.expr, depth)
        elif isinstance(stmt, cast.For):
            info = self._loop_info(stmt, depth)
            self.loops.append(info)
            self._walk_stmt(stmt.body, depth + 1)
        elif isinstance(stmt, cast.If):
            self.has_control_flow = True
            self._walk_expr(stmt.cond, depth)
            self._walk_stmt(stmt.then, depth)
            if stmt.other is not None:
                self._walk_stmt(stmt.other, depth)
        elif isinstance(stmt, cast.While):
            self.has_control_flow = True
            self._walk_expr(stmt.cond, depth)
            self._walk_stmt(stmt.body, depth)
        elif isinstance(stmt, cast.Return):
            if stmt.value is not None:
                self._walk_expr(stmt.value, depth)
        elif isinstance(stmt, (cast.Break, cast.Continue)):
            self.has_control_flow = True
        elif isinstance(stmt, cast.Pragma):
            pass
        else:  # pragma: no cover
            raise UnsupportedKernelError(f"unhandled stmt {type(stmt).__name__}")

    def _note_decl(self, stmt: cast.DeclStmt) -> None:
        init = stmt.init
        if init is None:
            return
        # gid alias: size_t i = get_global_id(D);
        if (
            isinstance(init, cast.Call)
            and init.func == "get_global_id"
            and len(init.args) == 1
            and isinstance(init.args[0], cast.IntLiteral)
        ):
            self.gid_aliases[stmt.name] = f"gid{init.args[0].value}"
            return
        value = self._const_eval(init)
        if value is not None:
            self.consts[stmt.name] = value
        else:
            # remember the defining expression so index analysis can see
            # through locals like `idx = (g % NI) * NJ + g / NI`
            self.expr_aliases[stmt.name] = init

    def _loop_info(self, stmt: cast.For, depth: int) -> LoopInfo:
        init = stmt.init
        var: Optional[str] = None
        start: Optional[int] = None
        if isinstance(init, cast.DeclStmt):
            var = init.name
            start = self._const_eval(init.init) if init.init is not None else 0
        elif isinstance(init, cast.ExprStmt) and isinstance(init.expr, cast.Assign):
            tgt = init.expr.target
            if isinstance(tgt, cast.Ident):
                var = tgt.name
                start = self._const_eval(init.expr.value)
        if var is None or start is None:
            raise UnsupportedKernelError(
                f"cannot analyze loop header at line {stmt.line}: "
                "need 'var = <const>' initialization"
            )
        bound = self._loop_bound(stmt.cond, var, stmt.line)
        step = self._loop_step(stmt.step, var, stmt.line)
        return LoopInfo(
            var=var, start=start, bound=bound, step=step, unroll=stmt.unroll, depth=depth
        )

    def _loop_bound(self, cond: Optional[cast.Expr], var: str, line: int) -> int:
        if not isinstance(cond, cast.Binary) or cond.op not in ("<", "<="):
            raise UnsupportedKernelError(
                f"loop at line {line} must use 'var < bound' or 'var <= bound'"
            )
        if not (isinstance(cond.left, cast.Ident) and cond.left.name == var):
            raise UnsupportedKernelError(
                f"loop condition at line {line} must test the induction variable"
            )
        bound = self._const_eval(cond.right)
        if bound is None:
            raise UnsupportedKernelError(
                f"loop bound at line {line} is not a compile-time constant"
            )
        return bound + 1 if cond.op == "<=" else bound

    def _loop_step(self, step: Optional[cast.Expr], var: str, line: int) -> int:
        if step is None:
            raise UnsupportedKernelError(f"loop at line {line} has no step")
        if isinstance(step, cast.Unary) and step.op in ("++", "p++"):
            return 1
        if isinstance(step, cast.Assign) and isinstance(step.target, cast.Ident):
            if step.target.name != var:
                raise UnsupportedKernelError(
                    f"loop step at line {line} must update the induction variable"
                )
            if step.op == "+=":
                value = self._const_eval(step.value)
                if value is not None:
                    return value
            if step.op == "=" and isinstance(step.value, cast.Binary):
                b = step.value
                if (
                    b.op == "+"
                    and isinstance(b.left, cast.Ident)
                    and b.left.name == var
                ):
                    value = self._const_eval(b.right)
                    if value is not None:
                        return value
        raise UnsupportedKernelError(
            f"unsupported loop step at line {line} (need ++, += const)"
        )

    # -- expression walk ----------------------------------------------------------

    def _walk_expr(
        self, expr: cast.Expr, depth: int, store: bool = False, addr: bool = False
    ) -> None:
        if isinstance(expr, (cast.IntLiteral, cast.FloatLiteral, cast.Ident)):
            return
        if isinstance(expr, cast.Assign):
            self._walk_expr(expr.value, depth)
            if isinstance(expr.target, cast.Index):
                self._record_access(expr.target, depth, is_write=True)
                self._walk_expr(expr.target.index, depth, addr=True)
            else:
                self._walk_expr(expr.target, depth, store=True)
            if expr.op != "=":
                self.alu_ops += 1
                # compound assignment to memory also reads the target
                if isinstance(expr.target, cast.Index):
                    self._record_access(expr.target, depth, is_write=False)
            return
        if isinstance(expr, cast.Index):
            self._record_access(expr, depth, is_write=False)
            self._walk_expr(expr.index, depth, addr=True)
            return
        if isinstance(expr, cast.Binary):
            # address arithmetic lives in the LSU's address generator,
            # not the data path; only data ops count toward ALU/DSP cost
            if not addr:
                if expr.op in ("+", "-", "*", "/", "%"):
                    self.alu_ops += 1
                if expr.op in ("*", "/"):
                    self.mul_ops += 1
            self._walk_expr(expr.left, depth, addr=addr)
            self._walk_expr(expr.right, depth, addr=addr)
            return
        if isinstance(expr, cast.Unary):
            if not addr and expr.op in ("-", "~", "++", "--", "p++", "p--"):
                self.alu_ops += 1
            self._walk_expr(expr.operand, depth, addr=addr)
            return
        if isinstance(expr, cast.Conditional):
            self.has_control_flow = True
            self._walk_expr(expr.cond, depth)
            self._walk_expr(expr.then, depth)
            self._walk_expr(expr.other, depth)
            return
        if isinstance(expr, cast.Call):
            if expr.func == "get_global_id":
                self.uses_gid_directly = True
            vec_mem = vector_memory_builtin(expr.func)
            if vec_mem is not None:
                self._record_vector_memory(expr, vec_mem, depth)
                return
            if expr.func in ("fma", "mad", "mad24"):
                self.alu_ops += 2
                self.mul_ops += 1
            elif expr.func in ("mul24",):
                self.alu_ops += 1
                self.mul_ops += 1
            elif expr.func not in BUILTIN_WORKITEM_FUNCTIONS:
                self.alu_ops += 1
            for a in expr.args:
                self._walk_expr(a, depth)
            return
        if isinstance(expr, (cast.Swizzle, cast.Cast)):
            inner = expr.base if isinstance(expr, cast.Swizzle) else expr.operand
            self._walk_expr(inner, depth)
            return
        if isinstance(expr, cast.VectorLiteral):
            for el in expr.elements:
                self._walk_expr(el, depth)
            return
        raise UnsupportedKernelError(f"unhandled expr {type(expr).__name__}")

    def _record_access(self, expr: cast.Index, depth: int, is_write: bool) -> None:
        if not isinstance(expr.base, cast.Ident):
            raise UnsupportedKernelError(
                f"only direct parameter indexing is supported (line {expr.line})"
            )
        name = expr.base.name
        param_ty = self.program.param_types[self.func.name].get(name)
        if not isinstance(param_ty, T.PointerType):
            raise UnsupportedKernelError(
                f"indexing non-buffer {name!r} at line {expr.line}"
            )
        if param_ty.address_space != "__global":
            return  # local/constant memory is not modelled as DRAM traffic
        affine = self._affine(expr.index)
        self.accesses.append(
            MemAccess(
                param=name,
                element=param_ty.pointee,
                index=expr.index,
                is_write=is_write,
                affine=affine,
                line=expr.line,
                depth=depth,
            )
        )

    def _record_vector_memory(
        self, expr: cast.Call, vec_mem: tuple[str, int], depth: int
    ) -> None:
        """vloadN/vstoreN: a vector-width access through a scalar pointer."""
        kind, width = vec_mem
        if kind == "load":
            offset, ptr = expr.args
        else:
            data, offset, ptr = expr.args
            self._walk_expr(data, depth)
        self._walk_expr(offset, depth, addr=True)
        if not isinstance(ptr, cast.Ident):
            raise UnsupportedKernelError(
                f"vload/vstore through a computed pointer (line {expr.line})"
            )
        param_ty = self.program.param_types[self.func.name].get(ptr.name)
        if not isinstance(param_ty, T.PointerType):
            raise UnsupportedKernelError(
                f"vload/vstore on non-buffer {ptr.name!r} at line {expr.line}"
            )
        if param_ty.address_space != "__global":
            return
        assert isinstance(param_ty.pointee, T.ScalarType)
        element = T.vector(param_ty.pointee.kind.name, width)
        self.accesses.append(
            MemAccess(
                param=ptr.name,
                element=element,
                index=offset,
                is_write=(kind == "store"),
                affine=self._affine(offset),
                line=expr.line,
                depth=depth,
            )
        )

    # -- constant & affine evaluation ------------------------------------------

    def _const_eval(self, expr: Optional[cast.Expr]) -> Optional[int]:
        if expr is None:
            return None
        if isinstance(expr, cast.IntLiteral):
            return expr.value
        if isinstance(expr, cast.Ident):
            return self.consts.get(expr.name)
        if isinstance(expr, cast.Unary) and expr.op == "-":
            inner = self._const_eval(expr.operand)
            return None if inner is None else -inner
        if isinstance(expr, cast.Cast):
            return self._const_eval(expr.operand)
        if isinstance(expr, cast.Binary):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            if left is None or right is None:
                return None
            try:
                return {
                    "+": lambda: left + right,
                    "-": lambda: left - right,
                    "*": lambda: left * right,
                    "/": lambda: int(left / right) if right else None,
                    "%": lambda: left - int(left / right) * right if right else None,
                    "<<": lambda: left << right,
                    ">>": lambda: left >> right,
                }[expr.op]()
            except KeyError:
                return None
        return None

    def _affine(self, expr: cast.Expr) -> AffineIndex:
        try:
            coeffs, const = self._affine_walk(expr)
            return AffineIndex(coeffs=coeffs, const=const, is_affine=True)
        except _NotAffine:
            return AffineIndex(coeffs={}, const=0, is_affine=False)

    def _affine_walk(self, expr: cast.Expr) -> tuple[dict[str, int], int]:
        if isinstance(expr, cast.IntLiteral):
            return {}, expr.value
        if isinstance(expr, cast.Ident):
            name = expr.name
            if name in self.consts:
                return {}, self.consts[name]
            if name in self.gid_aliases:
                return {self.gid_aliases[name]: 1}, 0
            if name in self.expr_aliases:
                alias = self.expr_aliases.pop(name)  # cycle guard
                try:
                    return self._affine_walk(alias)
                finally:
                    self.expr_aliases[name] = alias
            return {name: 1}, 0
        if isinstance(expr, cast.Call) and expr.func == "get_global_id":
            arg = expr.args[0]
            if isinstance(arg, cast.IntLiteral):
                return {f"gid{arg.value}": 1}, 0
            raise _NotAffine()
        if isinstance(expr, cast.Cast):
            return self._affine_walk(expr.operand)
        if isinstance(expr, cast.Unary) and expr.op == "-":
            coeffs, const = self._affine_walk(expr.operand)
            return {k: -v for k, v in coeffs.items()}, -const
        if isinstance(expr, cast.Binary):
            if expr.op in ("+", "-"):
                lc, lk = self._affine_walk(expr.left)
                rc, rk = self._affine_walk(expr.right)
                sign = 1 if expr.op == "+" else -1
                merged = dict(lc)
                for k, v in rc.items():
                    merged[k] = merged.get(k, 0) + sign * v
                return {k: v for k, v in merged.items() if v}, lk + sign * rk
            if expr.op == "*":
                lconst = self._const_eval(expr.left)
                rconst = self._const_eval(expr.right)
                if lconst is not None:
                    coeffs, const = self._affine_walk(expr.right)
                    return {k: v * lconst for k, v in coeffs.items()}, const * lconst
                if rconst is not None:
                    coeffs, const = self._affine_walk(expr.left)
                    return {k: v * rconst for k, v in coeffs.items()}, const * rconst
                raise _NotAffine()
            if expr.op == "<<":
                shift = self._const_eval(expr.right)
                if shift is not None:
                    coeffs, const = self._affine_walk(expr.left)
                    factor = 1 << shift
                    return {k: v * factor for k, v in coeffs.items()}, const * factor
                raise _NotAffine()
        raise _NotAffine()


class _NotAffine(Exception):
    pass


# ---------------------------------------------------------------------------
# Numeric index streams
# ---------------------------------------------------------------------------


def index_stream(
    ir: KernelIR,
    access: MemAccess,
    *,
    global_size: int = 1,
    max_elements: int | None = None,
) -> np.ndarray:
    """Element-index stream of ``access`` over the full iteration domain.

    The domain is the cartesian product of the NDRange (size
    ``global_size``, variable ``gid0``) and the counted loop nest,
    innermost varying fastest — i.e. program order for a single
    work-item, work-item-major across the range. Evaluation is
    vectorized; non-affine expressions (``%``, ``/``) are supported.

    ``max_elements`` truncates the stream (leading window) for sampled
    simulation of very large domains.
    """
    domain: list[tuple[str, np.ndarray]] = []
    if ir.loop_mode is LoopMode.NDRANGE or ir.gid_vars:
        domain.append(("gid0", np.arange(global_size, dtype=np.int64)))
    for loop in ir.loops:
        domain.append(
            (loop.var, np.arange(loop.start, loop.bound, loop.step, dtype=np.int64))
        )
    if not domain:
        domain = [("gid0", np.arange(global_size, dtype=np.int64))]

    sizes = [len(values) for _, values in domain]
    total = int(np.prod(sizes))
    limit = total if max_elements is None else min(total, max_elements)

    flat = np.arange(limit, dtype=np.int64)
    env: dict[str, np.ndarray] = {}
    rem = flat
    # innermost (last domain entry) varies fastest
    for (var, values), _size in zip(reversed(domain), reversed(sizes)):
        env[var] = values[rem % len(values)]
        rem = rem // len(values)
    evaluator = _IndexEval(env, ir)
    return evaluator.eval(access.index)


class _IndexEval:
    """Vectorized integer evaluation of index expressions."""

    def __init__(self, env: dict[str, np.ndarray], ir: KernelIR):
        self.env = env
        self.ir = ir
        helper = _Analyzer(ir.program, ir.func)
        helper._walk_stmt(ir.func.body, depth=0)
        self._analyzer_consts = helper.consts
        self._gid_aliases = helper.gid_aliases
        self._expr_aliases = dict(helper.expr_aliases)

    def eval(self, expr: cast.Expr) -> np.ndarray:
        if isinstance(expr, cast.IntLiteral):
            return np.int64(expr.value)  # type: ignore[return-value]
        if isinstance(expr, cast.Ident):
            name = expr.name
            if name in self.env:
                return self.env[name]
            if name in self._gid_aliases and self._gid_aliases[name] in self.env:
                return self.env[self._gid_aliases[name]]
            if name in self._analyzer_consts:
                return np.int64(self._analyzer_consts[name])  # type: ignore[return-value]
            if name in self._expr_aliases:
                alias = self._expr_aliases.pop(name)  # cycle guard
                try:
                    return self.eval(alias)
                finally:
                    self._expr_aliases[name] = alias
            raise UnsupportedKernelError(
                f"index uses unknown variable {name!r} at line {expr.line}"
            )
        if isinstance(expr, cast.Call) and expr.func == "get_global_id":
            return self.env["gid0"]
        if isinstance(expr, cast.Cast):
            return self.eval(expr.operand)
        if isinstance(expr, cast.Unary) and expr.op == "-":
            return -self.eval(expr.operand)
        if isinstance(expr, cast.Binary):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            ops = {
                "+": np.add,
                "-": np.subtract,
                "*": np.multiply,
                "/": lambda a, b: np.asarray(a) // np.asarray(b),
                "%": lambda a, b: np.asarray(a) % np.asarray(b),
                "<<": np.left_shift,
                ">>": np.right_shift,
                "&": np.bitwise_and,
                "|": np.bitwise_or,
                "^": np.bitwise_xor,
            }
            if expr.op not in ops:
                raise UnsupportedKernelError(
                    f"unsupported operator {expr.op!r} in index at line {expr.line}"
                )
            return ops[expr.op](left, right)
        raise UnsupportedKernelError(
            f"unsupported index expression at line {expr.line}"
        )


def classify_stride(
    ir: KernelIR, access: MemAccess, *, global_size: int = 1, sample: int = 4096
) -> Optional[int]:
    """Constant element stride of the access stream, or ``None``.

    Uses the affine classification when available; otherwise samples the
    numeric stream and checks for a constant first difference.
    """
    if access.affine.is_affine:
        inner_var = None
        if ir.loops:
            inner_var = ir.loops[-1].var
        elif ir.loop_mode is LoopMode.NDRANGE:
            inner_var = "gid0"
        if inner_var is not None:
            # the variable that changes between consecutive stream items
            return access.affine.stride_of(inner_var) or access.affine.stride_of("gid0")
    stream = index_stream(ir, access, global_size=global_size, max_elements=sample)
    if stream.size < 2:
        return 0
    diffs = np.diff(stream)
    if np.all(diffs == diffs[0]):
        return int(diffs[0])
    return None
