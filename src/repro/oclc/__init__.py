"""OpenCL-C subset front-end: lexer, parser, semantics, execution, analysis.

Typical pipeline::

    from repro.oclc import compile_source
    checked = compile_source(src, defines={"ARRAY_SIZE": "1024"})
    ir = analyze(checked)            # device models consume this
    fast = specialize(checked)       # vectorized functional execution
    fast.run((1024,), {...})
"""

from __future__ import annotations

from typing import Mapping

from .analysis import KernelIR, LoopMode, MemAccess, analyze, classify_stride, index_stream
from .cast import TranslationUnit, to_source
from .fold import fold_expr, fold_stmt, fold_unit
from .interp import BufferArg, KernelInterpreter, run_kernel
from .lexer import tokenize
from .parser import parse
from .semantic import CheckedProgram, check
from .specialize import SpecializedKernel, specialize

__all__ = [
    "tokenize",
    "parse",
    "check",
    "compile_source",
    "analyze",
    "specialize",
    "run_kernel",
    "BufferArg",
    "KernelInterpreter",
    "SpecializedKernel",
    "CheckedProgram",
    "KernelIR",
    "LoopMode",
    "MemAccess",
    "TranslationUnit",
    "to_source",
    "fold_unit",
    "fold_expr",
    "fold_stmt",
    "classify_stride",
    "index_stream",
]


def compile_source(
    source: str, defines: Mapping[str, str] | None = None
) -> CheckedProgram:
    """Parse and type-check OpenCL-C ``source`` with ``-D`` style defines."""
    return check(parse(source, defines))
