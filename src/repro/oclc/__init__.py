"""OpenCL-C subset front-end: lexer, parser, semantics, execution, analysis.

Typical pipeline::

    from repro.oclc import compile_source
    checked = compile_source(src, defines={"ARRAY_SIZE": "1024"})
    ir = analyze(checked)            # device models consume this
    fast = specialize(checked)       # vectorized functional execution
    fast.run((1024,), {...})

:func:`compile_source_cached` is the memoized entry point sweep
campaigns use: it keys on the source text plus the *effective* defines
(the subset that can actually influence the compile), so thousands of
points that differ only in, say, an unreferenced ``N`` share one
front-end pass.
"""

from __future__ import annotations

import re
import threading
from typing import Mapping

from .analysis import KernelIR, LoopMode, MemAccess, analyze, classify_stride, index_stream
from .cast import TranslationUnit, to_source
from .compile import CompiledKernel, compile_kernel
from .fold import fold_expr, fold_stmt, fold_unit
from .interp import BufferArg, KernelInterpreter, run_kernel
from .lexer import tokenize
from .parser import parse
from .semantic import CheckedProgram, check
from .specialize import SpecializedKernel, specialize
from .vectorize import VectorKernel, vectorize_kernel

__all__ = [
    "tokenize",
    "parse",
    "check",
    "compile_source",
    "compile_source_cached",
    "effective_defines",
    "frontend_key",
    "frontend_cache_stats",
    "clear_frontend_cache",
    "analyze",
    "specialize",
    "compile_kernel",
    "CompiledKernel",
    "vectorize_kernel",
    "VectorKernel",
    "run_kernel",
    "BufferArg",
    "KernelInterpreter",
    "SpecializedKernel",
    "CheckedProgram",
    "KernelIR",
    "LoopMode",
    "MemAccess",
    "TranslationUnit",
    "to_source",
    "fold_unit",
    "fold_expr",
    "fold_stmt",
    "classify_stride",
    "index_stream",
]


def compile_source(
    source: str, defines: Mapping[str, str] | None = None
) -> CheckedProgram:
    """Parse and type-check OpenCL-C ``source`` with ``-D`` style defines."""
    return check(parse(source, defines))


# ---------------------------------------------------------------------------
# memoized front-end
# ---------------------------------------------------------------------------

_DIRECTIVE_RE = re.compile(r"^[ \t]*#", re.MULTILINE)
_WORD_RE = re.compile(r"[A-Za-z_]\w*")

_FRONTEND_CACHE_MAX = 1024
_frontend_cache: dict[tuple, CheckedProgram] = {}
_frontend_lock = threading.Lock()
_frontend_stats = {"hits": 0, "misses": 0}


def effective_defines(
    source: str, defines: Mapping[str, str | int] | None
) -> tuple[tuple[str, str], ...]:
    """The subset of ``defines`` that can influence compiling ``source``.

    The preprocessor substitutes macros on word boundaries, so a ``-D``
    entry whose name never appears as a word in the source cannot change
    the compile — two sweep points that differ only in such a define
    share one front-end artifact. Sources containing their own
    preprocessor directives (``#define``/``#ifdef``...) conservatively
    keep every define, since conditional blocks may test macro names
    that are not otherwise mentioned.
    """
    if not defines:
        return ()
    items = sorted((k, str(v)) for k, v in defines.items())
    if _DIRECTIVE_RE.search(source):
        return tuple(items)
    words = set(_WORD_RE.findall(source))
    return tuple((k, v) for k, v in items if k in words)


def frontend_key(
    source: str, defines: Mapping[str, str | int] | None
) -> tuple:
    """Content-addressed identity of one front-end compile."""
    return (source, effective_defines(source, defines))


def compile_source_cached(
    source: str, defines: Mapping[str, str] | None = None
) -> CheckedProgram:
    """Memoized :func:`compile_source`, keyed by :func:`frontend_key`.

    Thread-safe; the process-wide memo is bounded (oldest entries are
    evicted first). ``CheckedProgram`` artifacts are immutable after
    checking, so sharing one instance across callers — and across sweep
    worker threads — is safe.
    """
    key = frontend_key(source, defines)
    with _frontend_lock:
        cached = _frontend_cache.get(key)
        if cached is not None:
            _frontend_stats["hits"] += 1
            return cached
        _frontend_stats["misses"] += 1
    checked = compile_source(source, defines)
    with _frontend_lock:
        _frontend_cache[key] = checked
        while len(_frontend_cache) > _FRONTEND_CACHE_MAX:
            _frontend_cache.pop(next(iter(_frontend_cache)))
    return checked


def frontend_cache_stats() -> dict[str, int]:
    """Process-wide memo counters: hits, misses, current size."""
    with _frontend_lock:
        return {**_frontend_stats, "size": len(_frontend_cache)}


def clear_frontend_cache() -> None:
    """Empty the memo and zero its counters (test isolation helper)."""
    with _frontend_lock:
        _frontend_cache.clear()
        _frontend_stats["hits"] = 0
        _frontend_stats["misses"] = 0
