"""Tokenizer for the OpenCL-C subset, with a tiny preprocessor.

The preprocessor supports what MP-STREAM's build scripts need:

* object-like ``#define NAME value`` (and ``-DNAME=value`` build
  options, applied by :func:`tokenize` via the ``defines`` mapping);
* ``#pragma unroll [N]``, surfaced as :class:`PragmaTok` so the parser
  can attach unroll factors to the following loop;
* ``//`` and ``/* */`` comments.

Conditional compilation (``#ifdef``) is supported in the single-level
form the generated kernels use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import LexError

__all__ = ["Token", "tokenize", "KEYWORDS", "PUNCTUATION"]

KEYWORDS = frozenset(
    {
        "if",
        "else",
        "for",
        "while",
        "return",
        "break",
        "continue",
        "const",
        "restrict",
        "volatile",
        "void",
        "__kernel",
        "kernel",
        "__global",
        "global",
        "__local",
        "local",
        "__constant",
        "constant",
        "__private",
        "private",
        "__attribute__",
    }
)

# Longest-match-first punctuation/operator table.
PUNCTUATION = (
    "<<=",
    ">>=",
    "...",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "->",
    "+",
    "-",
    "*",
    "/",
    "%",
    "=",
    "<",
    ">",
    "!",
    "~",
    "&",
    "|",
    "^",
    "?",
    ":",
    ";",
    ",",
    ".",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
)


_DIGITS = frozenset("0123456789")
_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | _DIGITS


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``ident``, ``keyword``, ``int``, ``float``,
    ``punct``, ``pragma`` or ``eof``. ``text`` is the raw spelling and
    ``value`` the decoded payload (int/float value, pragma body...).
    """

    kind: str
    text: str
    line: int
    col: int
    value: object = None

    def is_punct(self, text: str) -> bool:
        return self.kind == "punct" and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == "keyword" and self.text == text


def _strip_comments(source: str) -> str:
    """Replace comments with spaces, preserving line structure."""
    out: list[str] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            end = source.find("*/", i + 2)
            if end < 0:
                line = source.count("\n", 0, i) + 1
                raise LexError("unterminated block comment", line=line)
            out.append(
                "".join("\n" if c == "\n" else " " for c in source[i : end + 2])
            )
            i = end + 2
            continue
        else:
            out.append(ch)
            i += 1
            continue
    return "".join(out)


def _preprocess(source: str, defines: dict[str, str]) -> list[tuple[int, str]]:
    """Handle directives; return (line_number, text) pairs of real code.

    ``defines`` is mutated with ``#define`` entries found in the source.
    ``#pragma`` lines are kept (as directive lines) for the tokenizer.
    """
    lines: list[tuple[int, str]] = []
    skipping = False
    depth_of_skip = 0
    depth = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("#"):
            directive = stripped[1:].strip()
            if directive.startswith("ifdef") or directive.startswith("ifndef"):
                depth += 1
                name = directive.split(None, 1)[1].strip() if " " in directive else ""
                want_defined = directive.startswith("ifdef")
                if not skipping and (name in defines) != want_defined:
                    skipping = True
                    depth_of_skip = depth
            elif directive.startswith("else"):
                if depth == 0:
                    raise LexError("#else without #if", line=lineno)
                if skipping and depth_of_skip == depth:
                    skipping = False
                elif not skipping and depth > 0:
                    skipping = True
                    depth_of_skip = depth
            elif directive.startswith("endif"):
                if depth == 0:
                    raise LexError("#endif without #if", line=lineno)
                if skipping and depth_of_skip == depth:
                    skipping = False
                depth -= 1
            elif skipping:
                continue
            elif directive.startswith("define"):
                body = directive[len("define") :].strip()
                if not body:
                    raise LexError("empty #define", line=lineno)
                parts = body.split(None, 1)
                name = parts[0]
                if "(" in name:
                    raise LexError(
                        "function-like macros are not supported", line=lineno
                    )
                defines[name] = parts[1] if len(parts) > 1 else "1"
            elif directive.startswith("undef"):
                name = directive.split(None, 1)[1].strip()
                defines.pop(name, None)
            elif directive.startswith("pragma"):
                lines.append((lineno, "#" + directive))
            elif directive.startswith("include"):
                # Headers carry nothing we model; ignore.
                continue
            else:
                raise LexError(f"unsupported directive #{directive}", line=lineno)
            continue
        if not skipping:
            lines.append((lineno, raw))
    if depth != 0:
        raise LexError("unterminated #if block", line=len(source.splitlines()))
    return lines


def _expand(text: str, defines: Mapping[str, str]) -> str:
    """Token-ish textual macro expansion, iterated to a fixed point."""
    if not defines:
        return text
    import re

    pattern = re.compile(r"\b(" + "|".join(re.escape(k) for k in defines) + r")\b")
    for _ in range(16):
        new = pattern.sub(lambda m: str(defines[m.group(1)]), text)
        if new == text:
            return new
        text = new
    raise LexError(f"macro expansion did not converge in {text!r}")


def tokenize(source: str, defines: Mapping[str, str] | None = None) -> list[Token]:
    """Tokenize OpenCL-C ``source`` into a list ending with an ``eof`` token.

    ``defines`` seeds the preprocessor macro table (the ``-D`` build
    options); ``#define`` lines in the source add to it.
    """
    macro_table: dict[str, str] = dict(defines or {})
    stripped = _strip_comments(source)
    lines = _preprocess(stripped, macro_table)

    tokens: list[Token] = []
    for lineno, text in lines:
        if text.lstrip().startswith("#pragma"):
            body = text.lstrip()[len("#pragma") :].strip()
            body = _expand(body, macro_table)
            tokens.append(Token("pragma", text.strip(), lineno, 1, value=body))
            continue
        text = _expand(text, macro_table)
        tokens.extend(_tokenize_line(text, lineno))
    tokens.append(Token("eof", "", lines[-1][0] if lines else 1, 1))
    return tokens


def _tokenize_line(text: str, lineno: int) -> Iterator[Token]:
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\f\v":
            i += 1
            continue
        col = i + 1
        # ASCII-only identifier/number rules, as in C: unicode "letters"
        # and "digits" (e.g. superscripts) are invalid characters
        if ch in _IDENT_START:
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            word = text[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            yield Token(kind, word, lineno, col)
            i = j
            continue
        if ch in _DIGITS or (ch == "." and i + 1 < n and text[i + 1] in _DIGITS):
            tok, i = _lex_number(text, i, lineno, col)
            yield tok
            continue
        for punct in PUNCTUATION:
            if text.startswith(punct, i):
                yield Token("punct", punct, lineno, col)
                i += len(punct)
                break
        else:
            raise LexError(f"invalid character {ch!r}", line=lineno, col=col)


def _lex_number(text: str, i: int, lineno: int, col: int) -> tuple[Token, int]:
    n = len(text)
    start = i
    is_float = False
    if text.startswith(("0x", "0X"), i):
        i += 2
        while i < n and (text[i] in "0123456789abcdefABCDEF"):
            i += 1
    else:
        while i < n and text[i] in _DIGITS:
            i += 1
        if i < n and text[i] == ".":
            is_float = True
            i += 1
            while i < n and text[i] in _DIGITS:
                i += 1
        if i < n and text[i] in "eE":
            peek = i + 1
            if peek < n and text[peek] in "+-":
                peek += 1
            if peek < n and text[peek] in _DIGITS:
                is_float = True
                i = peek
                while i < n and text[i] in _DIGITS:
                    i += 1
    suffix_start = i
    while i < n and text[i] in "uUlLfF":
        i += 1
    suffix = text[suffix_start:i].lower()
    literal = text[start:suffix_start]
    if i < n and (text[i].isalnum() or text[i] == "_"):
        raise LexError(
            f"invalid character {text[i]!r} in numeric literal", line=lineno, col=col
        )
    if is_float or suffix == "f":
        if suffix not in ("", "f"):
            raise LexError(
                f"bad float suffix {suffix!r} on {literal}", line=lineno, col=col
            )
        return Token("float", text[start:i], lineno, col, value=float(literal)), i
    if suffix not in ("", "u", "l", "ul", "lu", "ll", "ull"):
        raise LexError(
            f"bad integer suffix {suffix!r} on {literal}", line=lineno, col=col
        )
    return Token("int", text[start:i], lineno, col, value=int(literal, 0)), i
