"""AST node definitions for the OpenCL-C subset ("cast" = C AST).

The subset covers what memory benchmarks and simple HPC kernels need:
function definitions (``__kernel`` or helper), scalar/vector/pointer
declarations with initializers, ``for``/``while``/``if``/``return``,
the usual expression grammar (assignment through primary), vector
swizzles, calls to OpenCL builtins, ``__attribute__((...))`` lists and
``#pragma unroll``.

Nodes are frozen dataclasses; each carries its source line for
diagnostics. A small pretty-printer (:func:`to_source`) regenerates
compilable source from the AST, which the tests round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = [
    "Node",
    "Expr",
    "Stmt",
    "IntLiteral",
    "FloatLiteral",
    "Ident",
    "Unary",
    "Binary",
    "Assign",
    "Conditional",
    "Call",
    "Index",
    "Swizzle",
    "Cast",
    "VectorLiteral",
    "DeclStmt",
    "ExprStmt",
    "Block",
    "If",
    "For",
    "While",
    "Return",
    "Break",
    "Continue",
    "Pragma",
    "Attribute",
    "Param",
    "FunctionDef",
    "TranslationUnit",
    "to_source",
    "ASSIGN_OPS",
    "BINARY_OPS",
    "UNARY_OPS",
]

#: Compound-assignment operators the parser accepts (plus plain ``=``).
ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

#: Binary operators, grouped by precedence from low to high.
BINARY_OPS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)

UNARY_OPS = ("-", "+", "!", "~")


@dataclass(frozen=True)
class Node:
    """Common base: every node knows its 1-based source line."""

    line: int = field(default=0, kw_only=True)


class Expr(Node):
    """Marker base for expressions."""


class Stmt(Node):
    """Marker base for statements."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntLiteral(Expr):
    value: int
    suffix: str = ""  # "", "u", "l", "ul"


@dataclass(frozen=True)
class FloatLiteral(Expr):
    value: float
    suffix: str = ""  # "", "f"


@dataclass(frozen=True)
class Ident(Expr):
    name: str


@dataclass(frozen=True)
class Unary(Expr):
    op: str
    operand: Expr
    # prefix/postfix ++/-- are represented with ops "p++", "p--", "++", "--"


@dataclass(frozen=True)
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Assign(Expr):
    op: str  # one of ASSIGN_OPS
    target: Expr
    value: Expr


@dataclass(frozen=True)
class Conditional(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass(frozen=True)
class Call(Expr):
    func: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Index(Expr):
    base: Expr
    index: Expr


@dataclass(frozen=True)
class Swizzle(Expr):
    """Vector component access: ``v.x``, ``v.s0``, ``v.lo`` etc."""

    base: Expr
    components: str


@dataclass(frozen=True)
class Cast(Expr):
    type_name: str
    operand: Expr


@dataclass(frozen=True)
class VectorLiteral(Expr):
    """``(int4)(a, b, c, d)`` or splat ``(int4)(x)``."""

    type_name: str
    elements: tuple[Expr, ...]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeclStmt(Stmt):
    type_name: str
    name: str
    init: Optional[Expr] = None
    qualifiers: tuple[str, ...] = ()  # const, __local, ...


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass(frozen=True)
class Block(Stmt):
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt] = None


@dataclass(frozen=True)
class For(Stmt):
    init: Optional[Stmt]  # DeclStmt or ExprStmt or None
    cond: Optional[Expr]
    step: Optional[Expr]
    body: Stmt
    unroll: int = 1  # from a preceding '#pragma unroll N' or unroll_hint attribute


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class Continue(Stmt):
    pass


@dataclass(frozen=True)
class Pragma(Stmt):
    """A pragma kept in statement position (e.g. standalone ``#pragma``)."""

    text: str


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Attribute(Node):
    """One entry of an ``__attribute__((name(arg, ...)))`` list."""

    name: str
    args: tuple[int, ...] = ()


@dataclass(frozen=True)
class Param(Node):
    """A kernel/function parameter."""

    type_name: str
    name: str
    address_space: str = "__private"
    is_pointer: bool = False
    qualifiers: tuple[str, ...] = ()  # const, restrict, volatile


@dataclass(frozen=True)
class FunctionDef(Node):
    name: str
    return_type: str
    params: tuple[Param, ...]
    body: Block
    is_kernel: bool = False
    attributes: tuple[Attribute, ...] = ()


@dataclass(frozen=True)
class TranslationUnit(Node):
    functions: tuple[FunctionDef, ...]

    def kernel(self, name: str | None = None) -> FunctionDef:
        """Return the named kernel, or the sole kernel if unnamed."""
        kernels = [f for f in self.functions if f.is_kernel]
        if name is None:
            if len(kernels) != 1:
                raise ValueError(
                    f"expected exactly one kernel, found {[k.name for k in kernels]}"
                )
            return kernels[0]
        for k in kernels:
            if k.name == name:
                return k
        raise KeyError(f"no kernel named {name!r} (have {[k.name for k in kernels]})")


# ---------------------------------------------------------------------------
# Pretty-printer
# ---------------------------------------------------------------------------


def to_source(node: Union[Node, TranslationUnit], indent: int = 0) -> str:
    """Regenerate OpenCL-C source from an AST.

    The output is normalized (canonical spacing, explicit braces) but
    parses back to a structurally identical AST, which the round-trip
    property test relies on.
    """
    pad = "    " * indent
    if isinstance(node, TranslationUnit):
        return "\n\n".join(to_source(f) for f in node.functions) + "\n"
    if isinstance(node, FunctionDef):
        parts = []
        if node.is_kernel:
            parts.append("__kernel")
        for attr in node.attributes:
            if attr.args:
                args = ", ".join(str(a) for a in attr.args)
                parts.append(f"__attribute__(({attr.name}({args})))")
            else:
                parts.append(f"__attribute__(({attr.name}))")
        params = ", ".join(_param_src(p) for p in node.params)
        header = " ".join(parts + [node.return_type, f"{node.name}({params})"])
        return header + " " + to_source(node.body, indent)
    if isinstance(node, Block):
        inner = "\n".join(to_source(s, indent + 1) for s in node.body)
        return "{\n" + inner + ("\n" if inner else "") + pad + "}"
    if isinstance(node, DeclStmt):
        quals = "".join(q + " " for q in node.qualifiers)
        init = f" = {_expr_src(node.init)}" if node.init is not None else ""
        return f"{pad}{quals}{node.type_name} {node.name}{init};"
    if isinstance(node, ExprStmt):
        return f"{pad}{_expr_src(node.expr)};"
    if isinstance(node, If):
        src = f"{pad}if ({_expr_src(node.cond)}) " + _stmt_as_block(node.then, indent)
        if node.other is not None:
            src += " else " + _stmt_as_block(node.other, indent)
        return src
    if isinstance(node, For):
        init = ""
        if isinstance(node.init, DeclStmt):
            init = to_source(node.init, 0).strip()[:-1]  # drop ';'
        elif isinstance(node.init, ExprStmt):
            init = _expr_src(node.init.expr)
        cond = _expr_src(node.cond) if node.cond is not None else ""
        step = _expr_src(node.step) if node.step is not None else ""
        prefix = f"{pad}#pragma unroll {node.unroll}\n" if node.unroll != 1 else ""
        return (
            prefix
            + f"{pad}for ({init}; {cond}; {step}) "
            + _stmt_as_block(node.body, indent)
        )
    if isinstance(node, While):
        return f"{pad}while ({_expr_src(node.cond)}) " + _stmt_as_block(node.body, indent)
    if isinstance(node, Return):
        if node.value is None:
            return f"{pad}return;"
        return f"{pad}return {_expr_src(node.value)};"
    if isinstance(node, Break):
        return f"{pad}break;"
    if isinstance(node, Continue):
        return f"{pad}continue;"
    if isinstance(node, Pragma):
        return f"{pad}#pragma {node.text}"
    if isinstance(node, Expr):
        return pad + _expr_src(node)
    raise TypeError(f"cannot print {type(node).__name__}")


def _stmt_as_block(stmt: Stmt, indent: int) -> str:
    if isinstance(stmt, Block):
        return to_source(stmt, indent)
    return to_source(Block(body=(stmt,)), indent)


def _param_src(p: Param) -> str:
    quals = "".join(q + " " for q in p.qualifiers)
    space = f"{p.address_space} " if p.address_space != "__private" else ""
    star = " *" if p.is_pointer else " "
    return f"{space}{quals}{p.type_name}{star}{p.name}"


_PRECEDENCE: dict[str, int] = {}
for _level, _ops in enumerate(BINARY_OPS):
    for _op in _ops:
        _PRECEDENCE[_op] = _level


def _expr_src(expr: Expr, parent_prec: int = -1) -> str:
    if isinstance(expr, IntLiteral):
        return f"{expr.value}{expr.suffix}"
    if isinstance(expr, FloatLiteral):
        text = repr(expr.value)
        return f"{text}{expr.suffix}"
    if isinstance(expr, Ident):
        return expr.name
    if isinstance(expr, Binary):
        prec = _PRECEDENCE[expr.op]
        src = (
            f"{_expr_src(expr.left, prec)} {expr.op} "
            f"{_expr_src(expr.right, prec + 1)}"
        )
        return f"({src})" if prec < parent_prec else src
    if isinstance(expr, Unary):
        if expr.op in ("p++", "p--"):
            return f"{_expr_src(expr.operand, 100)}{expr.op[1:]}"
        return f"{expr.op}{_expr_src(expr.operand, 100)}"
    if isinstance(expr, Assign):
        return f"{_expr_src(expr.target)} {expr.op} {_expr_src(expr.value)}"
    if isinstance(expr, Conditional):
        src = (
            f"{_expr_src(expr.cond, 1)} ? {_expr_src(expr.then)} : "
            f"{_expr_src(expr.other)}"
        )
        return f"({src})" if parent_prec >= 0 else src
    if isinstance(expr, Call):
        args = ", ".join(_expr_src(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, Index):
        return f"{_expr_src(expr.base, 100)}[{_expr_src(expr.index)}]"
    if isinstance(expr, Swizzle):
        return f"{_expr_src(expr.base, 100)}.{expr.components}"
    if isinstance(expr, Cast):
        return f"({expr.type_name}){_expr_src(expr.operand, 100)}"
    if isinstance(expr, VectorLiteral):
        elems = ", ".join(_expr_src(e) for e in expr.elements)
        return f"({expr.type_name})({elems})"
    raise TypeError(f"cannot print expression {type(expr).__name__}")
