"""Functional interpreter for checked OpenCL-C kernels.

Executes every work-item of an NDRange sequentially against numpy
buffers, with C/OpenCL evaluation semantics (wrap-around integer
arithmetic on fixed-width types, truncating division, elementwise
vector operations). This is the *semantic reference*: the fast
vectorized execution path (:mod:`repro.oclc.specialize`) is validated
against it, and the device performance models never touch data at all.

Floating-point association: binary operators evaluate as per-element
NumPy ufuncs in source association — one IEEE-754 rounding per
operation, no fused multiply-add — which makes the interpreter bitwise
comparable to the NumPy host-stream reference. The pinned ULP budgets
for those comparisons live in :mod:`repro.verify.tolerance` (see its
audit note).

Work-item execution order is a deterministic linear sweep of the global
range; STREAM-style kernels are embarrassingly parallel so order does
not matter, but a barrier inside a loop would — the interpreter rejects
``barrier`` calls to stay honest about that limitation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from ..errors import InterpError
from ..ocl import types as T
from . import cast
from .semantic import (
    BUILTIN_MATH_FUNCTIONS,
    BUILTIN_VOID_FUNCTIONS,
    BUILTIN_WORKITEM_FUNCTIONS,
    CheckedProgram,
    swizzle_indices,
    vector_memory_builtin,
)

__all__ = ["BufferArg", "run_kernel", "KernelInterpreter"]

#: Refuse single runs above this many (work-items x loop iterations) to
#: keep accidental full-size interpretation from hanging a test session.
MAX_INTERPRETED_OPS = 50_000_000


@dataclass
class BufferArg:
    """A global-memory kernel argument backed by a numpy array.

    ``array`` must be 1-D with the scalar dtype of the parameter's
    pointee element type; vector-typed parameters view the same flat
    array in lane-sized groups, exactly like OpenCL buffer aliasing.
    """

    array: np.ndarray

    def __post_init__(self) -> None:
        if self.array.ndim != 1:
            raise InterpError("buffer arguments must be 1-D arrays")


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: object = None):
        self.value = value


def run_kernel(
    program: CheckedProgram,
    kernel_name: str,
    global_size: tuple[int, ...],
    args: Mapping[str, object],
    local_size: tuple[int, ...] | None = None,
) -> None:
    """Execute ``kernel_name`` over ``global_size`` with ``args``.

    Buffer parameters take :class:`BufferArg` (mutated in place);
    scalar parameters take Python/numpy scalars.
    """
    KernelInterpreter(program, kernel_name).run(global_size, args, local_size)


class KernelInterpreter:
    """Interprets one kernel of a checked program."""

    def __init__(self, program: CheckedProgram, kernel_name: str | None = None):
        self.program = program
        self.kernel = program.kernel(kernel_name)
        self.param_types = program.param_types[self.kernel.name]

    # -- public API -----------------------------------------------------------

    def run(
        self,
        global_size: tuple[int, ...],
        args: Mapping[str, object],
        local_size: tuple[int, ...] | None = None,
    ) -> None:
        global_size = tuple(int(g) for g in global_size)
        if not 1 <= len(global_size) <= 3:
            raise InterpError(f"NDRange must be 1-3 dimensional, got {global_size}")
        if any(g <= 0 for g in global_size):
            raise InterpError(f"NDRange dimensions must be positive: {global_size}")
        if local_size is None:
            local_size = tuple(1 for _ in global_size)
        local_size = tuple(int(x) for x in local_size)
        if len(local_size) != len(global_size):
            raise InterpError("local_size dimensionality must match global_size")
        for g, l in zip(global_size, local_size):
            if l <= 0 or g % l != 0:
                raise InterpError(
                    f"local size {local_size} does not divide global size {global_size}"
                )
        total = int(np.prod(global_size))
        if total > MAX_INTERPRETED_OPS:
            raise InterpError(
                f"refusing to interpret {total} work-items "
                f"(cap {MAX_INTERPRETED_OPS}); use the specialized path"
            )
        base_env = self._bind_args(args)
        ndim = len(global_size)
        for flat in range(total):
            gid = []
            rem = flat
            for d in range(ndim):
                gid.append(rem % global_size[d])
                rem //= global_size[d]
            self._run_work_item(tuple(gid), global_size, local_size, base_env)

    # -- argument binding -------------------------------------------------------

    def _bind_args(self, args: Mapping[str, object]) -> dict[str, object]:
        env: dict[str, object] = {}
        missing = set(self.param_types) - set(args)
        extra = set(args) - set(self.param_types)
        if missing:
            raise InterpError(f"missing kernel arguments: {sorted(missing)}")
        if extra:
            raise InterpError(f"unknown kernel arguments: {sorted(extra)}")
        for name, ty in self.param_types.items():
            value = args[name]
            if isinstance(ty, T.PointerType):
                if not isinstance(value, BufferArg):
                    raise InterpError(
                        f"argument {name!r} must be a BufferArg, got {type(value).__name__}"
                    )
                pointee = ty.pointee
                if isinstance(pointee, (T.ScalarType, T.VectorType)):
                    want = pointee.dtype
                    if value.array.dtype != want:
                        raise InterpError(
                            f"argument {name!r}: buffer dtype {value.array.dtype} "
                            f"does not match element type {pointee} ({want})"
                        )
                env[name] = _Pointer(value.array, pointee)
            else:
                if isinstance(value, BufferArg):
                    raise InterpError(f"argument {name!r} is scalar, got a buffer")
                env[name] = _coerce(value, ty)
        return env

    # -- per-work-item execution -------------------------------------------------

    def _run_work_item(
        self,
        gid: tuple[int, ...],
        global_size: tuple[int, ...],
        local_size: tuple[int, ...],
        base_env: dict[str, object],
    ) -> None:
        env = _Env(dict(base_env))
        evaluator = _Evaluator(
            self.program, env, gid, global_size, local_size
        )
        try:
            evaluator.exec_stmt(self.kernel.body)
        except _ReturnSignal:
            pass


@dataclass
class _Pointer:
    """A typed view of a flat numpy buffer."""

    array: np.ndarray
    element: T.Type

    def load(self, index: int) -> object:
        el = self.element
        if isinstance(el, T.VectorType):
            start = index * el.width
            self._bounds(start, el.width)
            return self.array[start : start + el.width].copy()
        self._bounds(index, 1)
        return self.array[index]

    def store(self, index: int, value: object) -> None:
        el = self.element
        if isinstance(el, T.VectorType):
            start = index * el.width
            self._bounds(start, el.width)
            self.array[start : start + el.width] = value
        else:
            self._bounds(index, 1)
            self.array[index] = value

    def _bounds(self, start: int, count: int) -> None:
        if start < 0 or start + count > self.array.size:
            raise InterpError(
                f"out-of-bounds access: element {start} (+{count}) of "
                f"buffer with {self.array.size} elements"
            )


class _Env:
    def __init__(self, values: dict[str, object]):
        self._stack: list[dict[str, object]] = [values]

    def push(self) -> None:
        self._stack.append({})

    def pop(self) -> None:
        self._stack.pop()

    def declare(self, name: str, value: object) -> None:
        self._stack[-1][name] = value

    def get(self, name: str) -> object:
        for frame in reversed(self._stack):
            if name in frame:
                return frame[name]
        raise InterpError(f"unbound identifier {name!r}")

    def set(self, name: str, value: object) -> None:
        for frame in reversed(self._stack):
            if name in frame:
                frame[name] = value
                return
        raise InterpError(f"unbound identifier {name!r}")


def _coerce(value: object, ty: T.Type) -> object:
    """Convert a Python/numpy value to the numpy representation of ``ty``."""
    if isinstance(ty, T.VectorType):
        arr = np.asarray(value, dtype=ty.dtype)
        if arr.shape == ():
            arr = np.full(ty.width, arr)
        if arr.shape != (ty.width,):
            raise InterpError(f"cannot coerce shape {arr.shape} to {ty}")
        return arr
    if isinstance(ty, T.ScalarType):
        with np.errstate(over="ignore", invalid="ignore"):
            if isinstance(value, np.ndarray) and value.shape != ():
                raise InterpError(f"cannot coerce array to scalar {ty}")
            return ty.dtype.type(value)
    raise InterpError(f"cannot coerce to {ty}")


_MATH_IMPL: dict[str, Callable[..., object]] = {
    "min": np.minimum,
    "max": np.maximum,
    "clamp": lambda x, lo, hi: np.minimum(np.maximum(x, lo), hi),
    "fabs": np.abs,
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "floor": np.floor,
    "ceil": np.ceil,
    "fma": lambda a, b, c: a * b + c,
    "mad": lambda a, b, c: a * b + c,
    "mul24": lambda a, b: a * b,
    "mad24": lambda a, b, c: a * b + c,
}


class _Evaluator:
    """Statement/expression evaluation for one work-item."""

    def __init__(
        self,
        program: CheckedProgram,
        env: _Env,
        gid: tuple[int, ...],
        global_size: tuple[int, ...],
        local_size: tuple[int, ...],
    ):
        self.program = program
        self.env = env
        self.gid = gid
        self.global_size = global_size
        self.local_size = local_size
        self._ops = 0
        self._depth = 0

    # -- statements ----------------------------------------------------------

    def exec_stmt(self, stmt: cast.Stmt) -> None:
        if isinstance(stmt, cast.Block):
            self.env.push()
            try:
                for s in stmt.body:
                    self.exec_stmt(s)
            finally:
                self.env.pop()
        elif isinstance(stmt, cast.DeclStmt):
            ty = T.parse_type_name(stmt.type_name)
            if stmt.init is not None:
                value = _coerce(self.eval(stmt.init), ty)
            elif isinstance(ty, T.VectorType):
                value = np.zeros(ty.width, dtype=ty.dtype)
            else:
                value = _coerce(0, ty)
            self.env.declare(stmt.name, value)
        elif isinstance(stmt, cast.ExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, cast.If):
            if self._truthy(self.eval(stmt.cond)):
                self.exec_stmt(stmt.then)
            elif stmt.other is not None:
                self.exec_stmt(stmt.other)
        elif isinstance(stmt, cast.For):
            self.env.push()
            try:
                if stmt.init is not None:
                    self.exec_stmt(stmt.init)
                while stmt.cond is None or self._truthy(self.eval(stmt.cond)):
                    self._tick()
                    try:
                        self.exec_stmt(stmt.body)
                    except _BreakSignal:
                        break
                    except _ContinueSignal:
                        pass
                    if stmt.step is not None:
                        self.eval(stmt.step)
            finally:
                self.env.pop()
        elif isinstance(stmt, cast.While):
            while self._truthy(self.eval(stmt.cond)):
                self._tick()
                try:
                    self.exec_stmt(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
        elif isinstance(stmt, cast.Return):
            raise _ReturnSignal(
                self.eval(stmt.value) if stmt.value is not None else None
            )
        elif isinstance(stmt, cast.Break):
            raise _BreakSignal()
        elif isinstance(stmt, cast.Continue):
            raise _ContinueSignal()
        elif isinstance(stmt, cast.Pragma):
            pass
        else:  # pragma: no cover
            raise InterpError(f"unhandled statement {type(stmt).__name__}")

    def _tick(self) -> None:
        self._ops += 1
        if self._ops > MAX_INTERPRETED_OPS:
            raise InterpError(
                f"work-item exceeded {MAX_INTERPRETED_OPS} loop iterations"
            )

    @staticmethod
    def _truthy(value: object) -> bool:
        return bool(value)

    # -- expressions ----------------------------------------------------------

    def eval(self, expr: cast.Expr) -> object:
        if isinstance(expr, cast.IntLiteral):
            return _coerce(expr.value, self.program.type_of(expr))
        if isinstance(expr, cast.FloatLiteral):
            return _coerce(expr.value, self.program.type_of(expr))
        if isinstance(expr, cast.Ident):
            return self.env.get(expr.name)
        if isinstance(expr, cast.Unary):
            return self._unary(expr)
        if isinstance(expr, cast.Binary):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            return self._binary(expr.op, left, right, self.program.type_of(expr))
        if isinstance(expr, cast.Assign):
            return self._assign(expr)
        if isinstance(expr, cast.Conditional):
            if self._truthy(self.eval(expr.cond)):
                value = self.eval(expr.then)
            else:
                value = self.eval(expr.other)
            return _coerce(value, self.program.type_of(expr))
        if isinstance(expr, cast.Call):
            return self._call(expr)
        if isinstance(expr, cast.Index):
            ptr = self.eval(expr.base)
            if not isinstance(ptr, _Pointer):
                raise InterpError("indexing a non-pointer value", line=expr.line)
            index = int(self.eval(expr.index))  # type: ignore[arg-type]
            return ptr.load(index)
        if isinstance(expr, cast.Swizzle):
            base = self.eval(expr.base)
            base_ty = self.program.type_of(expr.base)
            if not isinstance(base_ty, T.VectorType):
                raise InterpError("swizzle of non-vector", line=expr.line)
            indices = swizzle_indices(expr.components, base_ty.width, expr.line)
            arr = np.asarray(base)
            if len(indices) == 1:
                return arr[indices[0]]
            return arr[list(indices)].copy()
        if isinstance(expr, cast.Cast):
            return _coerce(self.eval(expr.operand), self.program.type_of(expr))
        if isinstance(expr, cast.VectorLiteral):
            ty = self.program.type_of(expr)
            assert isinstance(ty, T.VectorType)
            values = [self.eval(el) for el in expr.elements]
            if len(values) == 1:
                return np.full(ty.width, values[0], dtype=ty.dtype)
            return np.array(values, dtype=ty.dtype)
        raise InterpError(f"unhandled expression {type(expr).__name__}", line=expr.line)

    def _unary(self, expr: cast.Unary) -> object:
        if expr.op in ("++", "--", "p++", "p--"):
            old = self.eval(expr.operand)
            ty = self.program.type_of(expr.operand)
            delta = 1 if "+" in expr.op else -1
            with np.errstate(over="ignore"):
                new = _coerce(old + delta, ty)  # type: ignore[operator]
            self._store(expr.operand, new)
            return old if expr.op.startswith("p") else new
        value = self.eval(expr.operand)
        ty = self.program.type_of(expr)
        with np.errstate(over="ignore"):
            if expr.op == "-":
                return _coerce(-value, ty)  # type: ignore[operator]
            if expr.op == "+":
                return value
            if expr.op == "!":
                return _coerce(0 if self._truthy(value) else 1, T.INT)
            if expr.op == "~":
                return _coerce(~np.asarray(value), ty)
        raise InterpError(f"unhandled unary {expr.op}", line=expr.line)

    def _binary(self, op: str, left: object, right: object, result_ty: T.Type) -> object:
        with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
            if op == "&&":
                return _coerce(1 if (self._truthy(left) and self._truthy(right)) else 0, T.INT)
            if op == "||":
                return _coerce(1 if (self._truthy(left) or self._truthy(right)) else 0, T.INT)
            if op in ("==", "!=", "<", ">", "<=", ">="):
                fn = {
                    "==": np.equal,
                    "!=": np.not_equal,
                    "<": np.less,
                    ">": np.greater,
                    "<=": np.less_equal,
                    ">=": np.greater_equal,
                }[op]
                raw = fn(left, right)
                if isinstance(result_ty, T.VectorType):
                    # OpenCL: true lanes are -1
                    return (-raw.astype(result_ty.dtype))  # type: ignore[union-attr]
                return _coerce(1 if raw else 0, T.INT)
            if op == "+":
                raw = np.add(left, right)
            elif op == "-":
                raw = np.subtract(left, right)
            elif op == "*":
                raw = np.multiply(left, right)
            elif op == "/":
                raw = self._divide(left, right, result_ty)
            elif op == "%":
                raw = self._modulo(left, right)
            elif op == "&":
                raw = np.bitwise_and(left, right)
            elif op == "|":
                raw = np.bitwise_or(left, right)
            elif op == "^":
                raw = np.bitwise_xor(left, right)
            elif op == "<<":
                raw = np.left_shift(left, right)
            elif op == ">>":
                raw = np.right_shift(left, right)
            else:
                raise InterpError(f"unhandled binary {op}")
            return _coerce(raw, result_ty)

    @staticmethod
    def _divide(left: object, right: object, result_ty: T.Type) -> object:
        if result_ty.is_float():
            return np.divide(left, right)
        la = np.asarray(left, dtype=np.int64)
        ra = np.asarray(right, dtype=np.int64)
        if np.any(ra == 0):
            raise InterpError("integer division by zero")
        # C semantics: truncate toward zero.
        return (np.sign(la) * np.sign(ra)) * (np.abs(la) // np.abs(ra))

    @staticmethod
    def _modulo(left: object, right: object) -> object:
        la = np.asarray(left, dtype=np.int64)
        ra = np.asarray(right, dtype=np.int64)
        if np.any(ra == 0):
            raise InterpError("integer modulo by zero")
        return la - (np.sign(la) * np.sign(ra)) * (np.abs(la) // np.abs(ra)) * ra

    def _assign(self, expr: cast.Assign) -> object:
        value = self.eval(expr.value)
        target_ty = self.program.type_of(expr.target)
        if expr.op != "=":
            current = self.eval(expr.target)
            value = self._binary(expr.op[:-1], current, value, target_ty)
        value = _coerce(value, target_ty)
        self._store(expr.target, value)
        return value

    def _store(self, target: cast.Expr, value: object) -> None:
        if isinstance(target, cast.Ident):
            self.env.set(target.name, value)
        elif isinstance(target, cast.Index):
            ptr = self.eval(target.base)
            if not isinstance(ptr, _Pointer):
                raise InterpError("store through non-pointer", line=target.line)
            index = int(self.eval(target.index))  # type: ignore[arg-type]
            ptr.store(index, value)
        elif isinstance(target, cast.Swizzle):
            base_ty = self.program.type_of(target.base)
            if not isinstance(base_ty, T.VectorType):
                raise InterpError("swizzle store on non-vector", line=target.line)
            vec = np.asarray(self.eval(target.base)).copy()
            indices = swizzle_indices(target.components, base_ty.width, target.line)
            vec[list(indices)] = value
            self._store(target.base, vec)
        else:
            raise InterpError("invalid store target", line=target.line)

    def _call(self, expr: cast.Call) -> object:
        name = expr.func
        if name in BUILTIN_WORKITEM_FUNCTIONS:
            if name == "get_work_dim":
                return _coerce(len(self.global_size), T.UINT)
            dim = int(self.eval(expr.args[0]))  # type: ignore[arg-type]
            if dim >= len(self.global_size):
                # OpenCL returns 1/0 for out-of-range dims; mirror that.
                table = {
                    "get_global_id": 0,
                    "get_local_id": 0,
                    "get_group_id": 0,
                    "get_global_size": 1,
                    "get_local_size": 1,
                    "get_num_groups": 1,
                }
                return _coerce(table[name], T.SIZE_T)
            values = {
                "get_global_id": self.gid[dim],
                "get_local_id": self.gid[dim] % self.local_size[dim],
                "get_group_id": self.gid[dim] // self.local_size[dim],
                "get_global_size": self.global_size[dim],
                "get_local_size": self.local_size[dim],
                "get_num_groups": self.global_size[dim] // self.local_size[dim],
            }
            return _coerce(values[name], T.SIZE_T)
        if name in BUILTIN_MATH_FUNCTIONS:
            args = [self.eval(a) for a in expr.args]
            with np.errstate(over="ignore", invalid="ignore"):
                raw = _MATH_IMPL[name](*args)
            return _coerce(raw, self.program.type_of(expr))
        if name in BUILTIN_VOID_FUNCTIONS:
            raise InterpError(
                f"{name}() is not supported by the sequential interpreter "
                "(work-items run to completion one at a time)",
                line=expr.line,
            )
        vec_mem = vector_memory_builtin(name)
        if vec_mem is not None:
            return self._vector_memory(expr, vec_mem)
        return self._call_user_function(expr)

    def _vector_memory(self, expr: cast.Call, vec_mem: tuple[str, int]) -> object:
        """Execute vloadN / vstoreN against a scalar buffer."""
        kind, width = vec_mem
        if kind == "load":
            offset = int(self.eval(expr.args[0]))  # type: ignore[arg-type]
            ptr = self.eval(expr.args[1])
        else:
            data = self.eval(expr.args[0])
            offset = int(self.eval(expr.args[1]))  # type: ignore[arg-type]
            ptr = self.eval(expr.args[2])
        if not isinstance(ptr, _Pointer):
            raise InterpError("vload/vstore needs a buffer pointer", line=expr.line)
        start = offset * width
        if start < 0 or start + width > ptr.array.size:
            raise InterpError(
                f"vload/vstore out of bounds: elements {start}..{start + width} "
                f"of {ptr.array.size}",
                line=expr.line,
            )
        if kind == "load":
            return ptr.array[start : start + width].copy()
        ptr.array[start : start + width] = np.asarray(data)
        return None

    _MAX_CALL_DEPTH = 64

    def _call_user_function(self, expr: cast.Call) -> object:
        """Call a helper function defined in the same translation unit."""
        func = next(
            (
                f
                for f in self.program.unit.functions
                if f.name == expr.func and not f.is_kernel
            ),
            None,
        )
        if func is None:
            raise InterpError(f"unknown function {expr.func!r}", line=expr.line)
        if self._depth >= self._MAX_CALL_DEPTH:
            raise InterpError(
                f"call depth exceeded {self._MAX_CALL_DEPTH} "
                f"(recursive helper {expr.func!r}?)",
                line=expr.line,
            )
        param_types = self.program.param_types[func.name]
        frame: dict[str, object] = {}
        for param, arg in zip(func.params, expr.args):
            value = self.eval(arg)
            ty = param_types[param.name]
            if isinstance(ty, T.PointerType):
                if not isinstance(value, _Pointer):
                    raise InterpError(
                        f"argument {param.name!r} of {func.name!r} needs a buffer",
                        line=expr.line,
                    )
                frame[param.name] = value
            else:
                frame[param.name] = _coerce(value, ty)
        callee = _Evaluator(
            self.program,
            _Env(frame),
            self.gid,
            self.global_size,
            self.local_size,
        )
        callee._depth = self._depth + 1
        try:
            callee.exec_stmt(func.body)
        except _ReturnSignal as ret:
            if ret.value is None:
                return None
            ret_ty = (
                T.VOID
                if func.return_type == "void"
                else T.parse_type_name(func.return_type)
            )
            if isinstance(ret_ty, (T.ScalarType, T.VectorType)):
                return _coerce(ret.value, ret_ty)
            return ret.value
        return None
