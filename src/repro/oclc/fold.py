"""Constant folding and algebraic simplification over the AST.

HLS compilers fold the generated kernels' index arithmetic long before
scheduling; this pass gives our front-end the same ability, which makes
``to_source`` output readable after ``-D`` substitution and gives the
analyses fewer shapes to handle. The pass is semantics-preserving by
construction:

* integer arithmetic on literals folds with C semantics (wrap-around is
  *not* folded — a computation that would overflow ``int`` stays
  symbolic, because the checker types literals as ``int``);
* float arithmetic folds in double precision only when both operands
  are literals;
* algebraic identities: ``x*1``, ``1*x``, ``x+0``, ``0+x``, ``x-0``,
  ``x*0``/``0*x`` (only for side-effect-free ``x``), ``x/1``,
  ``x<<0``, ``x>>0``;
* ``if`` with a literal condition keeps only the taken branch;
  conditional expressions likewise;
* ``for`` loops whose condition folds to false are dropped.

The result is a *new* tree (nodes are immutable); unfoldable subtrees
are shared with the input.
"""

from __future__ import annotations

from typing import Optional

from . import cast

__all__ = ["fold_unit", "fold_expr", "fold_stmt"]

_INT_MIN, _INT_MAX = -(2**31), 2**31 - 1


def fold_unit(unit: cast.TranslationUnit) -> cast.TranslationUnit:
    """Fold every function body of a translation unit."""
    functions = tuple(
        cast.FunctionDef(
            name=f.name,
            return_type=f.return_type,
            params=f.params,
            body=_fold_block(f.body),
            is_kernel=f.is_kernel,
            attributes=f.attributes,
            line=f.line,
        )
        for f in unit.functions
    )
    return cast.TranslationUnit(functions, line=unit.line)


def _fold_block(block: cast.Block) -> cast.Block:
    out: list[cast.Stmt] = []
    for stmt in block.body:
        folded = fold_stmt(stmt)
        if folded is not None:
            out.append(folded)
    return cast.Block(tuple(out), line=block.line)


def fold_stmt(stmt: cast.Stmt) -> Optional[cast.Stmt]:
    """Fold one statement; ``None`` means it folded away entirely."""
    if isinstance(stmt, cast.Block):
        return _fold_block(stmt)
    if isinstance(stmt, cast.DeclStmt):
        if stmt.init is None:
            return stmt
        return cast.DeclStmt(
            type_name=stmt.type_name,
            name=stmt.name,
            init=fold_expr(stmt.init),
            qualifiers=stmt.qualifiers,
            line=stmt.line,
        )
    if isinstance(stmt, cast.ExprStmt):
        return cast.ExprStmt(fold_expr(stmt.expr), line=stmt.line)
    if isinstance(stmt, cast.If):
        cond = fold_expr(stmt.cond)
        truth = _literal_truth(cond)
        if truth is True:
            return fold_stmt(stmt.then)
        if truth is False:
            return fold_stmt(stmt.other) if stmt.other is not None else None
        then = fold_stmt(stmt.then) or cast.Block((), line=stmt.line)
        other = fold_stmt(stmt.other) if stmt.other is not None else None
        return cast.If(cond, then, other, line=stmt.line)
    if isinstance(stmt, cast.For):
        cond = fold_expr(stmt.cond) if stmt.cond is not None else None
        init = fold_stmt(stmt.init) if stmt.init is not None else None
        if cond is not None and (
            _literal_truth(cond) is False or _zero_trip(init, cond)
        ):
            # zero-trip loop: only its init's side effects remain; our
            # inits are declarations or simple assignments with no other
            # observable effect, so the loop vanishes
            return None
        body = fold_stmt(stmt.body) or cast.Block((), line=stmt.line)
        step = fold_expr(stmt.step) if stmt.step is not None else None
        return cast.For(init, cond, step, body, unroll=stmt.unroll, line=stmt.line)
    if isinstance(stmt, cast.While):
        cond = fold_expr(stmt.cond)
        if _literal_truth(cond) is False:
            return None
        body = fold_stmt(stmt.body) or cast.Block((), line=stmt.line)
        return cast.While(cond, body, line=stmt.line)
    if isinstance(stmt, cast.Return):
        if stmt.value is None:
            return stmt
        return cast.Return(fold_expr(stmt.value), line=stmt.line)
    return stmt  # Break/Continue/Pragma


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


def fold_expr(expr: cast.Expr) -> cast.Expr:
    """Fold one expression tree."""
    if isinstance(expr, (cast.IntLiteral, cast.FloatLiteral, cast.Ident)):
        return expr
    if isinstance(expr, cast.Unary):
        operand = fold_expr(expr.operand)
        if expr.op == "-" and isinstance(operand, cast.IntLiteral):
            value = -operand.value
            if _INT_MIN <= value <= _INT_MAX:
                return cast.IntLiteral(value, suffix=operand.suffix, line=expr.line)
        if expr.op == "-" and isinstance(operand, cast.FloatLiteral):
            return cast.FloatLiteral(-operand.value, suffix=operand.suffix, line=expr.line)
        if expr.op == "+":
            return operand
        if expr.op == "!" and isinstance(operand, cast.IntLiteral):
            return cast.IntLiteral(0 if operand.value else 1, line=expr.line)
        return cast.Unary(expr.op, operand, line=expr.line)
    if isinstance(expr, cast.Binary):
        return _fold_binary(expr)
    if isinstance(expr, cast.Assign):
        return cast.Assign(
            expr.op, fold_expr(expr.target), fold_expr(expr.value), line=expr.line
        )
    if isinstance(expr, cast.Conditional):
        cond = fold_expr(expr.cond)
        truth = _literal_truth(cond)
        if truth is True:
            return fold_expr(expr.then)
        if truth is False:
            return fold_expr(expr.other)
        return cast.Conditional(
            cond, fold_expr(expr.then), fold_expr(expr.other), line=expr.line
        )
    if isinstance(expr, cast.Call):
        return cast.Call(
            expr.func, tuple(fold_expr(a) for a in expr.args), line=expr.line
        )
    if isinstance(expr, cast.Index):
        return cast.Index(fold_expr(expr.base), fold_expr(expr.index), line=expr.line)
    if isinstance(expr, cast.Swizzle):
        return cast.Swizzle(fold_expr(expr.base), expr.components, line=expr.line)
    if isinstance(expr, cast.Cast):
        return cast.Cast(expr.type_name, fold_expr(expr.operand), line=expr.line)
    if isinstance(expr, cast.VectorLiteral):
        return cast.VectorLiteral(
            expr.type_name, tuple(fold_expr(e) for e in expr.elements), line=expr.line
        )
    return expr


def _fold_binary(expr: cast.Binary) -> cast.Expr:
    left = fold_expr(expr.left)
    right = fold_expr(expr.right)
    op = expr.op

    lit = _fold_literal_pair(op, left, right, expr.line)
    if lit is not None:
        return lit

    # algebraic identities (x must be effect-free to drop it in x*0)
    if op == "+":
        if _is_int(left, 0):
            return right
        if _is_int(right, 0):
            return left
    elif op == "-":
        if _is_int(right, 0):
            return left
    elif op == "*":
        if _is_int(left, 1):
            return right
        if _is_int(right, 1):
            return left
        if _is_int(left, 0) and _effect_free(right):
            return cast.IntLiteral(0, line=expr.line)
        if _is_int(right, 0) and _effect_free(left):
            return cast.IntLiteral(0, line=expr.line)
    elif op == "/":
        if _is_int(right, 1):
            return left
    elif op in ("<<", ">>"):
        if _is_int(right, 0):
            return left
    return cast.Binary(op, left, right, line=expr.line)


def _fold_literal_pair(
    op: str, left: cast.Expr, right: cast.Expr, line: int
) -> Optional[cast.Expr]:
    if isinstance(left, cast.IntLiteral) and isinstance(right, cast.IntLiteral):
        a, b = left.value, right.value
        try:
            value = {
                "+": lambda: a + b,
                "-": lambda: a - b,
                "*": lambda: a * b,
                "/": lambda: _trunc_div(a, b),
                "%": lambda: a - _trunc_div(a, b) * b,
                "<<": lambda: a << b if 0 <= b < 32 else None,
                ">>": lambda: a >> b if 0 <= b < 32 else None,
                "&": lambda: a & b,
                "|": lambda: a | b,
                "^": lambda: a ^ b,
                "==": lambda: int(a == b),
                "!=": lambda: int(a != b),
                "<": lambda: int(a < b),
                ">": lambda: int(a > b),
                "<=": lambda: int(a <= b),
                ">=": lambda: int(a >= b),
                "&&": lambda: int(bool(a) and bool(b)),
                "||": lambda: int(bool(a) or bool(b)),
            }[op]()
        except (KeyError, ZeroDivisionError):
            return None
        if value is None or not _INT_MIN <= value <= _INT_MAX:
            return None  # overflow or unfoldable: keep symbolic
        return cast.IntLiteral(value, line=line)
    if isinstance(left, cast.FloatLiteral) and isinstance(right, cast.FloatLiteral):
        a, b = left.value, right.value
        try:
            value = {
                "+": lambda: a + b,
                "-": lambda: a - b,
                "*": lambda: a * b,
                "/": lambda: a / b,
            }[op]()
        except (KeyError, ZeroDivisionError):
            return None
        return cast.FloatLiteral(value, line=line)
    return None


def _trunc_div(a: int, b: int) -> int:
    if b == 0:
        raise ZeroDivisionError
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _zero_trip(init: Optional[cast.Stmt], cond: cast.Expr) -> bool:
    """Recognize ``for (i = A; i < B; ...)`` with literal A >= B."""
    if isinstance(init, cast.DeclStmt):
        var, start = init.name, init.init
    elif isinstance(init, cast.ExprStmt) and isinstance(init.expr, cast.Assign):
        if not isinstance(init.expr.target, cast.Ident):
            return False
        var, start = init.expr.target.name, init.expr.value
    else:
        return False
    if not isinstance(start, cast.IntLiteral):
        return False
    if not (
        isinstance(cond, cast.Binary)
        and cond.op in ("<", "<=")
        and isinstance(cond.left, cast.Ident)
        and cond.left.name == var
        and isinstance(cond.right, cast.IntLiteral)
    ):
        return False
    bound = cond.right.value
    return start.value >= bound if cond.op == "<" else start.value > bound


def _literal_truth(expr: cast.Expr) -> Optional[bool]:
    if isinstance(expr, cast.IntLiteral):
        return bool(expr.value)
    if isinstance(expr, cast.FloatLiteral):
        return bool(expr.value)
    return None


def _is_int(expr: cast.Expr, value: int) -> bool:
    return isinstance(expr, cast.IntLiteral) and expr.value == value


def _effect_free(expr: cast.Expr) -> bool:
    """Conservatively: no assignments, increments or calls inside."""
    if isinstance(expr, (cast.IntLiteral, cast.FloatLiteral, cast.Ident)):
        return True
    if isinstance(expr, cast.Unary):
        if expr.op in ("++", "--", "p++", "p--"):
            return False
        return _effect_free(expr.operand)
    if isinstance(expr, cast.Binary):
        return _effect_free(expr.left) and _effect_free(expr.right)
    if isinstance(expr, cast.Conditional):
        return all(
            _effect_free(e) for e in (expr.cond, expr.then, expr.other)
        )
    if isinstance(expr, cast.Index):
        return _effect_free(expr.base) and _effect_free(expr.index)
    if isinstance(expr, (cast.Swizzle, cast.Cast)):
        inner = expr.base if isinstance(expr, cast.Swizzle) else expr.operand
        return _effect_free(inner)
    if isinstance(expr, cast.VectorLiteral):
        return all(_effect_free(e) for e in expr.elements)
    return False  # calls, assignments
