"""Vectorized (numpy) execution of analyzable kernels.

The sequential interpreter (:mod:`repro.oclc.interp`) is the semantic
reference but interprets one work-item at a time — far too slow for the
multi-megabyte arrays the benchmark uses. This module *specializes* a
kernel: it flattens the iteration domain (NDRange × counted loop nest)
and evaluates the innermost body once, with every scalar replaced by a
numpy array over the whole domain. For STREAM-style kernels this is
exact, and the test suite proves it by comparing both paths on random
small instances.

Specialization refuses (raises :class:`UnsupportedKernelError`) when
vectorized evaluation could diverge from sequential semantics:

* data-dependent control flow (``if``/``while``/``break``) in the body,
* a kernel that both reads and writes the same buffer argument,
* loop-carried scalar state (a local read before it is written in the
  same iteration).

Callers fall back to the interpreter in those cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..errors import UnsupportedKernelError
from ..ocl import types as T
from . import cast
from .analysis import KernelIR, LoopMode, analyze
from .interp import BufferArg
from .semantic import (
    BUILTIN_MATH_FUNCTIONS,
    BUILTIN_WORKITEM_FUNCTIONS,
    CheckedProgram,
    swizzle_indices,
    vector_memory_builtin,
)

__all__ = ["SpecializedKernel", "specialize"]


def specialize(program: CheckedProgram, kernel_name: str | None = None) -> "SpecializedKernel":
    """Build a vectorized executor for the kernel, or raise if unsafe."""
    ir = analyze(program, kernel_name)
    return SpecializedKernel(ir)


@dataclass
class _Reduction:
    """One recognized sum-reduction: ``acc = acc + <expr>`` in the body."""

    var: str
    value: cast.Expr
    stmt: cast.Stmt


@dataclass
class _Body:
    """The straight-line innermost statements plus outer-level decls.

    ``epilogue`` holds statements after the outermost loop (e.g. the
    final ``c[0] = acc;`` of a dot product); ``reductions`` the
    recognized sum-accumulations, which execute as vectorized sums.
    """

    outer_decls: list[cast.DeclStmt]
    inner: list[cast.Stmt]
    epilogue: list[cast.Stmt]
    reductions: list[_Reduction]


class SpecializedKernel:
    """Runs a kernel by vectorized evaluation over its iteration domain."""

    def __init__(self, ir: KernelIR):
        self.ir = ir
        self.program = ir.program
        self._check_safe()
        self._body = self._extract_body()
        self._check_loop_carried()

    # -- safety ---------------------------------------------------------------

    def _check_safe(self) -> None:
        ir = self.ir
        if ir.has_control_flow:
            raise UnsupportedKernelError(
                f"kernel {ir.name!r} has data-dependent control flow; "
                "use the interpreter"
            )
        read_params = {a.param for a in ir.reads}
        write_params = {a.param for a in ir.writes}
        overlap = read_params & write_params
        if overlap:
            raise UnsupportedKernelError(
                f"kernel {ir.name!r} reads and writes {sorted(overlap)}; "
                "vectorized order is not guaranteed to match sequential order"
            )

    def _extract_body(self) -> _Body:
        """Peel the counted loop nest, collecting straight-line code.

        Outer levels may contain only declarations (which become uniform
        or per-domain values) around exactly one loop; the innermost
        level is the straight-line body that gets vectorized.
        """
        outer_decls: list[cast.DeclStmt] = []

        def flatten(stmt: cast.Stmt) -> list[cast.Stmt]:
            if isinstance(stmt, cast.Block):
                out: list[cast.Stmt] = []
                for s in stmt.body:
                    out.extend(flatten(s))
                return out
            if isinstance(stmt, cast.Pragma):
                return []
            if isinstance(stmt, cast.Return) and stmt.value is None:
                return []
            return [stmt]

        epilogue: list[cast.Stmt] = []

        def peel(
            stmts: list[cast.Stmt], loops_left: int, outermost: bool
        ) -> list[cast.Stmt]:
            if loops_left == 0:
                for s in stmts:
                    if not isinstance(s, (cast.DeclStmt, cast.ExprStmt)):
                        raise UnsupportedKernelError(
                            f"unsupported statement {type(s).__name__} "
                            f"at line {s.line} in innermost body"
                        )
                return stmts
            loop: cast.For | None = None
            for s in stmts:
                if isinstance(s, cast.For):
                    if loop is not None:
                        raise UnsupportedKernelError(
                            "multiple sibling loops are not supported"
                        )
                    loop = s
                elif isinstance(s, cast.DeclStmt) and loop is None:
                    outer_decls.append(s)
                elif loop is not None and outermost:
                    # statements after the loop: a scalar epilogue
                    # (e.g. storing a reduction result)
                    if not isinstance(s, (cast.DeclStmt, cast.ExprStmt)):
                        raise UnsupportedKernelError(
                            f"unsupported epilogue statement "
                            f"{type(s).__name__} at line {s.line}"
                        )
                    epilogue.append(s)
                else:
                    raise UnsupportedKernelError(
                        f"unsupported statement {type(s).__name__} at line "
                        f"{s.line} outside the innermost loop"
                    )
            if loop is None:  # pragma: no cover - analyze() counted the loops
                raise UnsupportedKernelError("loop nest shallower than analyzed")
            return peel(flatten(loop.body), loops_left - 1, outermost=False)

        inner = peel(
            flatten(self.ir.func.body), len(self.ir.loops), outermost=True
        )
        # Loop induction variables are bound by the domain, not by decls;
        # drop decls that shadow them.
        loop_vars = {loop.var for loop in self.ir.loops}
        outer = [d for d in outer_decls if d.name not in loop_vars]
        return _Body(outer_decls=outer, inner=inner, epilogue=epilogue, reductions=[])

    def _check_loop_carried(self) -> None:
        """Classify loop-carried locals: reductions or refusal.

        A variable declared outside the innermost body and *read before
        it is (re)assigned inside the body* depends on the previous
        iteration. The one shape we can vectorize exactly is a **sum
        reduction** (``acc = acc + <expr>`` / ``acc += <expr>`` where
        ``acc`` appears nowhere else in the body): integer sums are
        associative mod 2^width, and float sums match the sequential
        result to validation tolerance. Anything else is refused so the
        caller falls back to the interpreter.
        """
        outer_names = {d.name for d in self._body.outer_decls}

        def refs(expr: cast.Expr) -> list[str]:
            out: list[str] = []

            def walk(e: cast.Expr) -> None:
                if isinstance(e, cast.Ident):
                    out.append(e.name)
                elif isinstance(e, cast.Assign):
                    walk(e.value)
                    if isinstance(e.target, cast.Index):
                        walk(e.target.index)
                elif isinstance(e, cast.Binary):
                    walk(e.left)
                    walk(e.right)
                elif isinstance(e, cast.Unary):
                    walk(e.operand)
                elif isinstance(e, cast.Conditional):
                    walk(e.cond)
                    walk(e.then)
                    walk(e.other)
                elif isinstance(e, cast.Call):
                    for a in e.args:
                        walk(a)
                elif isinstance(e, cast.Index):
                    walk(e.base)
                    walk(e.index)
                elif isinstance(e, cast.Swizzle):
                    walk(e.base)
                elif isinstance(e, cast.Cast):
                    walk(e.operand)
                elif isinstance(e, cast.VectorLiteral):
                    for el in e.elements:
                        walk(el)

            walk(expr)
            return out

        def as_reduction(stmt: cast.Stmt) -> _Reduction | None:
            if not (isinstance(stmt, cast.ExprStmt) and isinstance(stmt.expr, cast.Assign)):
                return None
            assign = stmt.expr
            if not isinstance(assign.target, cast.Ident):
                return None
            var = assign.target.name
            if var not in outer_names:
                return None
            if assign.op == "+=":
                if var in refs(assign.value):
                    return None
                return _Reduction(var=var, value=assign.value, stmt=stmt)
            if assign.op == "=" and isinstance(assign.value, cast.Binary):
                b = assign.value
                if b.op == "+":
                    if isinstance(b.left, cast.Ident) and b.left.name == var:
                        if var not in refs(b.right):
                            return _Reduction(var=var, value=b.right, stmt=stmt)
                    if isinstance(b.right, cast.Ident) and b.right.name == var:
                        if var not in refs(b.left):
                            return _Reduction(var=var, value=b.left, stmt=stmt)
            return None

        assigned_in_body: set[str] = set()
        for stmt in self._body.inner:
            if isinstance(stmt, cast.ExprStmt) and isinstance(stmt.expr, cast.Assign):
                if isinstance(stmt.expr.target, cast.Ident):
                    assigned_in_body.add(stmt.expr.target.name)
            if isinstance(stmt, cast.DeclStmt):
                assigned_in_body.add(stmt.name)

        # pass 1: recognize reductions
        reductions: dict[str, _Reduction] = {}
        for stmt in self._body.inner:
            red = as_reduction(stmt)
            if red is not None:
                if red.var in reductions:
                    raise UnsupportedKernelError(
                        f"local {red.var!r} accumulates in more than one "
                        f"statement (line {stmt.line}); use the interpreter"
                    )
                reductions[red.var] = red

        # pass 2: every remaining read-before-write of an outer local is
        # genuinely loop-carried -> refuse; a reduction variable used in
        # any *other* statement of the body is also unsafe
        seen_assigned: set[str] = set()
        for stmt in self._body.inner:
            is_reduction_stmt = any(r.stmt is stmt for r in reductions.values())
            exprs: list[cast.Expr] = []
            if isinstance(stmt, cast.DeclStmt) and stmt.init is not None:
                exprs.append(stmt.init)
            elif isinstance(stmt, cast.ExprStmt):
                exprs.append(stmt.expr)
            for expr in exprs:
                for name in refs(expr):
                    if name in reductions and not is_reduction_stmt:
                        raise UnsupportedKernelError(
                            f"reduction variable {name!r} is also used at "
                            f"line {stmt.line}; use the interpreter"
                        )
                    if (
                        name in outer_names
                        and name not in reductions
                        and name in assigned_in_body
                        and name not in seen_assigned
                    ):
                        raise UnsupportedKernelError(
                            f"local {name!r} carries state across loop "
                            f"iterations (line {stmt.line}); use the interpreter"
                        )
            if isinstance(stmt, cast.DeclStmt):
                seen_assigned.add(stmt.name)
            elif isinstance(stmt, cast.ExprStmt) and isinstance(stmt.expr, cast.Assign):
                if isinstance(stmt.expr.target, cast.Ident):
                    seen_assigned.add(stmt.expr.target.name)

        self._body.reductions = list(reductions.values())

    # -- execution ----------------------------------------------------------------

    def run(
        self,
        global_size: tuple[int, ...] | int,
        args: Mapping[str, object],
        local_size: tuple[int, ...] | None = None,
    ) -> None:
        """Execute the kernel. Signature mirrors the interpreter's."""
        if isinstance(global_size, int):
            global_size = (global_size,)
        if len(global_size) != 1:
            raise UnsupportedKernelError(
                "specialized execution supports 1-D NDRanges only"
            )
        n_items = int(global_size[0])
        env = build_domain_env(self.ir, n_items)
        buffers = bind_arguments(self.program, self.ir, args, env)
        evaluator = _VecEval(self.program, env, buffers, n_items)
        for decl in self._body.outer_decls:
            evaluator.exec_decl(decl)
        reduction_by_stmt = {id(r.stmt): r for r in self._body.reductions}
        for stmt in self._body.inner:
            red = reduction_by_stmt.get(id(stmt))
            if red is not None:
                evaluator.exec_reduction(red.var, red.value)
            else:
                evaluator.exec_stmt(stmt)
        # the epilogue runs once, over scalar values (reduction results
        # are scalars; anything else uniform would be too)
        for stmt in self._body.epilogue:
            evaluator.exec_stmt(stmt)


def _coerce_scalar(value: object, ty: T.Type) -> object:
    if isinstance(ty, T.ScalarType):
        return ty.dtype.type(value)
    if isinstance(ty, T.VectorType):
        arr = np.asarray(value, dtype=ty.dtype)
        if arr.shape == ():
            arr = np.full(ty.width, arr)
        return arr
    raise UnsupportedKernelError(f"cannot pass {ty} by value")


_MATH_IMPL = {
    "min": np.minimum,
    "max": np.maximum,
    "clamp": lambda x, lo, hi: np.minimum(np.maximum(x, lo), hi),
    "fabs": np.abs,
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "log": np.log,
    "floor": np.floor,
    "ceil": np.ceil,
    "fma": lambda a, b, c: a * b + c,
    "mad": lambda a, b, c: a * b + c,
    "mul24": lambda a, b: a * b,
    "mad24": lambda a, b, c: a * b + c,
}

_CMP_IMPL = {
    "==": np.equal,
    "!=": np.not_equal,
    "<": np.less,
    ">": np.greater,
    "<=": np.less_equal,
    ">=": np.greater_equal,
}

_ARITH_IMPL = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
    "<<": np.left_shift,
    ">>": np.right_shift,
}


# -- shared vectorized semantics ------------------------------------------------
#
# Module-level so the compiled-closure lane (repro.oclc.compile) executes
# the *same* code paths as the tree-walking _VecEval below: one
# implementation, two drivers, no chance of semantic drift.


def align_streams(left: object, right: object) -> tuple[object, object]:
    """Broadcast a (..., N) scalar stream against a (..., N, w) vector stream.

    The canonical case is (N,) vs (N, w); the array lane's batched
    execution adds a leading batch axis, so the rule generalizes to "one
    side is exactly the other minus its lane axis" — including a
    batch-uniform (N,) stream against a batch-carrying (B, N, w) one.
    """
    la = np.asarray(left)
    ra = np.asarray(right)
    if la.ndim >= 1 and la.ndim == ra.ndim - 1 and la.shape == ra.shape[: la.ndim]:
        return la[..., None], ra
    if ra.ndim >= 1 and ra.ndim == la.ndim - 1 and ra.shape == la.shape[: ra.ndim]:
        return la, ra[..., None]
    if la.ndim >= 1 and la.ndim == ra.ndim - 2 and la.shape == ra.shape[1:-1]:
        return la[..., None], ra
    if ra.ndim >= 1 and ra.ndim == la.ndim - 2 and ra.shape == la.shape[1:-1]:
        return la, ra[..., None]
    return left, right


def cast_value(value: object, ty: T.Type) -> object:
    if isinstance(ty, (T.ScalarType, T.VectorType)):
        arr = np.asarray(value)
        if arr.dtype != ty.dtype:
            with np.errstate(over="ignore", invalid="ignore"):
                arr = arr.astype(ty.dtype)
        return arr
    return value


def apply_unary(op: str, value: object, ty: T.Type, line: int) -> object:
    with np.errstate(over="ignore"):
        if op == "-":
            return cast_value(np.negative(value), ty)
        if op == "+":
            return value
        if op == "!":
            return (np.asarray(value) == 0).astype(np.int32)
        if op == "~":
            return cast_value(np.invert(np.asarray(value)), ty)
    raise UnsupportedKernelError(f"unary {op} at line {line}")


def apply_binary(op: str, left: object, right: object, ty: T.Type) -> object:
    left_a, right_a = align_streams(left, right)
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        if op in ("&&", "||"):
            lb = np.asarray(left_a) != 0
            rb = np.asarray(right_a) != 0
            out = np.logical_and(lb, rb) if op == "&&" else np.logical_or(lb, rb)
            return out.astype(np.int32)
        if op in _CMP_IMPL:
            raw = _CMP_IMPL[op](left_a, right_a)
            if isinstance(ty, T.VectorType):
                return -raw.astype(ty.dtype)
            return raw.astype(np.int32)
        if op == "/" and not ty.is_float():
            la = np.asarray(left_a, dtype=np.int64)
            ra = np.asarray(right_a, dtype=np.int64)
            raw = (np.sign(la) * np.sign(ra)) * (np.abs(la) // np.abs(ra))
        elif op == "%":
            la = np.asarray(left_a, dtype=np.int64)
            ra = np.asarray(right_a, dtype=np.int64)
            raw = la - (np.sign(la) * np.sign(ra)) * (np.abs(la) // np.abs(ra)) * ra
        else:
            raw = _ARITH_IMPL[op](left_a, right_a)
        return cast_value(raw, ty)


def apply_math(name: str, args: list[object], ty: T.Type) -> object:
    aligned = args
    if len(args) == 2:
        aligned = list(align_streams(args[0], args[1]))
    with np.errstate(over="ignore", invalid="ignore"):
        raw = _MATH_IMPL[name](*aligned)
    return cast_value(raw, ty)


def reduce_sum(init: object, value: object) -> object:
    """Vectorized sum reduction step; wraps exactly like sequential ints."""
    value = np.asarray(value)
    with np.errstate(over="ignore", invalid="ignore"):
        total = value.sum(axis=0, dtype=value.dtype)
        result = np.asarray(init) + total
    dtype = np.asarray(init).dtype
    with np.errstate(over="ignore", invalid="ignore"):
        return result.astype(dtype) if result.dtype != dtype else result


def build_domain_env(ir: KernelIR, n_items: int) -> dict[str, object]:
    """Flatten the iteration domain into per-variable index arrays."""
    domain: list[tuple[str, np.ndarray]] = []
    if ir.loop_mode is LoopMode.NDRANGE or ir.gid_vars:
        domain.append(("gid0", np.arange(n_items, dtype=np.int64)))
    elif n_items != 1:
        # single work-item kernel launched with >1 items: every item
        # does identical work; semantics equal running once.
        domain.append(("gid0", np.arange(n_items, dtype=np.int64)))
    for loop in ir.loops:
        domain.append(
            (loop.var, np.arange(loop.start, loop.bound, loop.step, dtype=np.int64))
        )
    if not domain:
        domain = [("gid0", np.arange(n_items, dtype=np.int64))]

    sizes = [len(v) for _, v in domain]
    total = int(np.prod(sizes))
    env: dict[str, object] = {}
    rem = np.arange(total, dtype=np.int64)
    for var, values in reversed(domain):
        env[var] = values[rem % len(values)]
        rem = rem // len(values)
    return env


def bind_arguments(
    program: CheckedProgram,
    ir: KernelIR,
    args: Mapping[str, object],
    env: dict[str, object],
) -> dict[str, tuple[np.ndarray, T.Type]]:
    """Split kernel arguments into buffer bindings and scalar env entries."""
    buffers: dict[str, tuple[np.ndarray, T.Type]] = {}
    for name, ty in program.param_types[ir.name].items():
        if name not in args:
            raise UnsupportedKernelError(f"missing kernel argument {name!r}")
        value = args[name]
        if isinstance(ty, T.PointerType):
            if not isinstance(value, BufferArg):
                raise UnsupportedKernelError(f"argument {name!r} must be a BufferArg")
            buffers[name] = (value.array, ty.pointee)
        else:
            env[name] = _coerce_scalar(value, ty)
    return buffers


def buffer_view(
    buffers: Mapping[str, tuple[np.ndarray, T.Type]], name: str, line: int
) -> tuple[np.ndarray, T.Type]:
    if name not in buffers:
        raise UnsupportedKernelError(f"unknown buffer {name!r} at line {line}")
    arr, element = buffers[name]
    if isinstance(element, T.VectorType):
        width = element.width
        if arr.size % width:
            raise UnsupportedKernelError(
                f"buffer {name!r} size {arr.size} not divisible by vector width {width}"
            )
        return arr.reshape(-1, width), element
    return arr, element


def store_to_view(view: np.ndarray, idx: np.ndarray, value: object) -> None:
    arr = np.asarray(value)
    if view.ndim == 2 and arr.ndim == 1 and idx.ndim == 1:
        view[idx] = arr[:, None] if arr.shape[0] == idx.shape[0] else arr
    else:
        view[idx] = arr


def vector_view(
    buffers: Mapping[str, tuple[np.ndarray, T.Type]],
    name: str,
    width: int,
    line: int,
) -> np.ndarray:
    if name not in buffers:
        raise UnsupportedKernelError(f"unknown buffer {name!r} at line {line}")
    arr, _element = buffers[name]
    if arr.size % width:
        raise UnsupportedKernelError(
            f"buffer {name!r} size {arr.size} not divisible by {width}"
        )
    return arr.reshape(-1, width)


def vector_store(view: np.ndarray, offset: np.ndarray, data: object) -> None:
    value = np.asarray(data)
    if value.ndim == 1 and offset.ndim == 1 and value.shape[0] == offset.shape[0]:
        view[offset] = value[:, None]
    else:
        view[offset] = value


class _VecEval:
    """Vectorized evaluation of straight-line kernel statements.

    Every value is either a numpy scalar (uniform across the domain), a
    1-D array over the flattened domain, or — for vector types — a 2-D
    ``(domain, lanes)`` array.
    """

    def __init__(
        self,
        program: CheckedProgram,
        env: dict[str, object],
        buffers: dict[str, tuple[np.ndarray, T.Type]],
        n_items: int,
    ):
        self.program = program
        self.env = env
        self.buffers = buffers
        self.n_items = n_items

    # -- statements ----------------------------------------------------------

    def exec_decl(self, decl: cast.DeclStmt) -> None:
        ty = T.parse_type_name(decl.type_name)
        if decl.init is None:
            value: object = (
                np.zeros(ty.width, dtype=ty.dtype)
                if isinstance(ty, T.VectorType)
                else ty.dtype.type(0)  # type: ignore[union-attr]
            )
        else:
            value = self._cast_to(self.eval(decl.init), ty)
        self.env[decl.name] = value

    def exec_reduction(self, var: str, value_expr: cast.Expr) -> None:
        """Vectorized sum reduction: env[var] += sum(value over domain).

        Integer sums wrap exactly like the sequential loop (addition is
        associative modulo 2^width); float sums may differ by rounding
        order, within STREAM validation tolerance.
        """
        if var not in self.env:
            raise UnsupportedKernelError(f"reduction variable {var!r} unbound")
        self.env[var] = reduce_sum(self.env[var], self.eval(value_expr))

    def exec_stmt(self, stmt: cast.Stmt) -> None:
        if isinstance(stmt, cast.DeclStmt):
            self.exec_decl(stmt)
        elif isinstance(stmt, cast.ExprStmt):
            self.eval(stmt.expr)
        elif isinstance(stmt, cast.Block):
            for s in stmt.body:
                self.exec_stmt(s)
        elif isinstance(stmt, cast.Pragma):
            pass
        else:
            raise UnsupportedKernelError(
                f"unsupported statement {type(stmt).__name__} at line {stmt.line}"
            )

    # -- expressions ----------------------------------------------------------

    def eval(self, expr: cast.Expr) -> object:
        ty = self.program.type_of(expr)
        if isinstance(expr, cast.IntLiteral):
            return ty.dtype.type(expr.value)  # type: ignore[union-attr]
        if isinstance(expr, cast.FloatLiteral):
            return ty.dtype.type(expr.value)  # type: ignore[union-attr]
        if isinstance(expr, cast.Ident):
            if expr.name not in self.env:
                raise UnsupportedKernelError(f"unbound {expr.name!r} at line {expr.line}")
            return self.env[expr.name]
        if isinstance(expr, cast.Unary):
            return self._unary(expr)
        if isinstance(expr, cast.Binary):
            return self._binary(expr)
        if isinstance(expr, cast.Assign):
            return self._assign(expr)
        if isinstance(expr, cast.Conditional):
            cond = self.eval(expr.cond)
            then = self.eval(expr.then)
            other = self.eval(expr.other)
            return self._cast_to(np.where(np.asarray(cond) != 0, then, other), ty)
        if isinstance(expr, cast.Call):
            return self._call(expr)
        if isinstance(expr, cast.Index):
            return self._load(expr)
        if isinstance(expr, cast.Swizzle):
            base = np.asarray(self.eval(expr.base))
            base_ty = self.program.type_of(expr.base)
            assert isinstance(base_ty, T.VectorType)
            idx = swizzle_indices(expr.components, base_ty.width, expr.line)
            sel = base[..., list(idx)]
            if len(idx) == 1:
                return sel[..., 0]
            return sel
        if isinstance(expr, cast.Cast):
            return self._cast_to(self.eval(expr.operand), ty)
        if isinstance(expr, cast.VectorLiteral):
            assert isinstance(ty, T.VectorType)
            values = [np.asarray(self.eval(el), dtype=ty.dtype) for el in expr.elements]
            if len(values) == 1:
                values = values * ty.width
            return np.stack(np.broadcast_arrays(*values), axis=-1)
        raise UnsupportedKernelError(
            f"unsupported expression {type(expr).__name__} at line {expr.line}"
        )

    def _unary(self, expr: cast.Unary) -> object:
        if expr.op in ("++", "--", "p++", "p--"):
            raise UnsupportedKernelError(
                f"increment of locals at line {expr.line} is loop-carried state"
            )
        value = self.eval(expr.operand)
        return apply_unary(expr.op, value, self.program.type_of(expr), expr.line)

    def _binary(self, expr: cast.Binary) -> object:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        return apply_binary(expr.op, left, right, self.program.type_of(expr))

    _align = staticmethod(align_streams)

    def _assign(self, expr: cast.Assign) -> object:
        ty = self.program.type_of(expr.target)
        value = self.eval(expr.value)
        if expr.op != "=":
            synthetic = cast.Binary(expr.op[:-1], expr.target, expr.value, line=expr.line)
            # register its type so _binary can look it up
            self.program.expr_types[id(synthetic)] = ty
            value = self._binary(synthetic)
        value = self._cast_to(value, ty)
        target = expr.target
        if isinstance(target, cast.Ident):
            self.env[target.name] = value
        elif isinstance(target, cast.Index):
            self._store(target, value)
        else:
            raise UnsupportedKernelError(
                f"unsupported store target at line {expr.line}"
            )
        return value

    # -- memory ----------------------------------------------------------------

    def _buffer_view(self, name: str, line: int) -> tuple[np.ndarray, T.Type]:
        return buffer_view(self.buffers, name, line)

    def _load(self, expr: cast.Index) -> object:
        if not isinstance(expr.base, cast.Ident):
            raise UnsupportedKernelError(f"indirect load at line {expr.line}")
        view, element = self._buffer_view(expr.base.name, expr.line)
        idx = np.asarray(self.eval(expr.index), dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= view.shape[0]):
            raise UnsupportedKernelError(
                f"out-of-bounds load from {expr.base.name!r} at line {expr.line}"
            )
        return view[idx]

    def _store(self, target: cast.Index, value: object) -> None:
        if not isinstance(target.base, cast.Ident):
            raise UnsupportedKernelError(f"indirect store at line {target.line}")
        view, element = self._buffer_view(target.base.name, target.line)
        idx = np.asarray(self.eval(target.index), dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= view.shape[0]):
            raise UnsupportedKernelError(
                f"out-of-bounds store to {target.base.name!r} at line {target.line}"
            )
        store_to_view(view, idx, value)

    def _call(self, expr: cast.Call) -> object:
        name = expr.func
        ty = self.program.type_of(expr)
        vec_mem = vector_memory_builtin(name)
        if vec_mem is not None:
            return self._vector_memory(expr, vec_mem)
        if name in BUILTIN_WORKITEM_FUNCTIONS:
            if name == "get_work_dim":
                return np.int64(1)
            dim_expr = expr.args[0]
            dim = dim_expr.value if isinstance(dim_expr, cast.IntLiteral) else None
            if dim == 0:
                table = {
                    "get_global_id": self.env.get("gid0", np.int64(0)),
                    "get_global_size": np.int64(self.n_items),
                    "get_local_id": np.int64(0),
                    "get_local_size": np.int64(1),
                    "get_group_id": self.env.get("gid0", np.int64(0)),
                    "get_num_groups": np.int64(self.n_items),
                }
                return table[name]
            defaults = {
                "get_global_id": np.int64(0),
                "get_local_id": np.int64(0),
                "get_group_id": np.int64(0),
                "get_global_size": np.int64(1),
                "get_local_size": np.int64(1),
                "get_num_groups": np.int64(1),
            }
            return defaults[name]
        if name in BUILTIN_MATH_FUNCTIONS:
            args = [self.eval(a) for a in expr.args]
            return apply_math(name, args, ty)
        raise UnsupportedKernelError(f"unsupported call {name!r} at line {expr.line}")

    def _vector_memory(self, expr: cast.Call, vec_mem: tuple[str, int]) -> object:
        """Vectorized vloadN/vstoreN over the whole domain."""
        kind, width = vec_mem
        ptr_expr = expr.args[-1]
        if not isinstance(ptr_expr, cast.Ident):
            raise UnsupportedKernelError(
                f"vload/vstore through a computed pointer at line {expr.line}"
            )
        view = vector_view(self.buffers, ptr_expr.name, width, expr.line)
        if kind == "load":
            offset = np.asarray(self.eval(expr.args[0]), dtype=np.int64)
        else:
            data = self.eval(expr.args[0])
            offset = np.asarray(self.eval(expr.args[1]), dtype=np.int64)
        if np.any(offset < 0) or np.any(offset >= view.shape[0]):
            raise UnsupportedKernelError(
                f"vload/vstore out of bounds at line {expr.line}"
            )
        if kind == "load":
            return view[offset]
        vector_store(view, offset, data)
        return None

    _cast_to = staticmethod(cast_value)
