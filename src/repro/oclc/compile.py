"""Compiled-to-closures execution of analyzable kernels.

:class:`~repro.oclc.specialize.SpecializedKernel` already evaluates a
kernel body vectorized over its whole iteration domain, but it re-walks
the AST on *every* launch: node dispatch, ``type_of`` lookups, operator
table indexing and swizzle decoding all repeat per run. This module
compiles the same extracted body **once** into a flat list of Python
closures — every type, operator ufunc, builtin binding and swizzle index
is resolved at compile time — so a launch is just the domain binding
plus one closure call per statement.

The semantics are shared, not re-implemented: every closure calls the
module-level primitives of :mod:`repro.oclc.specialize`
(:func:`~repro.oclc.specialize.apply_binary`,
:func:`~repro.oclc.specialize.cast_value`, …), and the safety analysis
(control flow, read/write overlap, loop-carried state) is exactly the
one ``specialize()`` performs — a kernel compiles iff it specializes.
The tree-walking interpreter remains the differential oracle for both.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..errors import UnsupportedKernelError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..ocl import types as T
from . import cast
from .semantic import (
    BUILTIN_MATH_FUNCTIONS,
    BUILTIN_WORKITEM_FUNCTIONS,
    CheckedProgram,
    swizzle_indices,
    vector_memory_builtin,
)
from .specialize import (
    SpecializedKernel,
    apply_binary,
    apply_math,
    apply_unary,
    bind_arguments,
    buffer_view,
    build_domain_env,
    cast_value,
    reduce_sum,
    specialize,
    store_to_view,
    vector_store,
    vector_view,
)

__all__ = ["CompiledKernel", "compile_kernel"]


def compile_kernel(
    program: CheckedProgram, kernel_name: str | None = None
) -> "CompiledKernel":
    """Compile the kernel to closures, or raise if it cannot specialize."""
    with obs_trace.span("fastpath.compile", "fastpath") as span:
        spec = specialize(program, kernel_name)
        kernel = CompiledKernel(spec)
        span.set(kernel=kernel.ir.name)
    obs_metrics.count("fastpath.kernels.compiled")
    return kernel


class _Ctx:
    """Per-launch state threaded through the compiled closures."""

    __slots__ = ("env", "buffers", "n_items")

    def __init__(
        self,
        env: dict[str, object],
        buffers: dict[str, tuple[np.ndarray, T.Type]],
        n_items: int,
    ):
        self.env = env
        self.buffers = buffers
        self.n_items = n_items


_ExprFn = Callable[[_Ctx], object]
_StmtFn = Callable[[_Ctx], None]


class CompiledKernel:
    """Runs a kernel as a pre-compiled sequence of vectorized closures."""

    def __init__(self, spec: SpecializedKernel):
        self.ir = spec.ir
        self.program = spec.program
        body = spec._body
        comp = _Compiler(spec.program)
        steps: list[_StmtFn] = [comp.stmt(d) for d in body.outer_decls]
        by_stmt = {id(r.stmt): r for r in body.reductions}
        for stmt in body.inner:
            red = by_stmt.get(id(stmt))
            if red is not None:
                steps.append(comp.reduction(red.var, red.value))
            else:
                steps.append(comp.stmt(stmt))
        for stmt in body.epilogue:
            steps.append(comp.stmt(stmt))
        self._steps = steps

    def run(
        self,
        global_size: tuple[int, ...] | int,
        args: Mapping[str, object],
        local_size: tuple[int, ...] | None = None,
    ) -> None:
        """Execute the kernel. Signature mirrors the interpreter's."""
        if isinstance(global_size, int):
            global_size = (global_size,)
        if len(global_size) != 1:
            raise UnsupportedKernelError(
                "compiled execution supports 1-D NDRanges only"
            )
        n_items = int(global_size[0])
        env = build_domain_env(self.ir, n_items)
        buffers = bind_arguments(self.program, self.ir, args, env)
        ctx = _Ctx(env, buffers, n_items)
        for step in self._steps:
            step(ctx)


class _Compiler:
    """Turns the extracted straight-line body into closures.

    All AST dispatch, type lookup and builtin resolution happens here,
    once; the returned closures only touch per-launch state.
    """

    def __init__(self, program: CheckedProgram):
        self.program = program

    # -- statements ----------------------------------------------------------

    def stmt(self, stmt: cast.Stmt) -> _StmtFn:
        if isinstance(stmt, cast.DeclStmt):
            return self._decl(stmt)
        if isinstance(stmt, cast.ExprStmt):
            fn = self.expr(stmt.expr)

            def run_expr(ctx: _Ctx) -> None:
                fn(ctx)

            return run_expr
        if isinstance(stmt, cast.Block):
            subs = [self.stmt(s) for s in stmt.body]

            def run_block(ctx: _Ctx) -> None:
                for sub in subs:
                    sub(ctx)

            return run_block
        if isinstance(stmt, cast.Pragma):
            return lambda ctx: None
        raise UnsupportedKernelError(
            f"unsupported statement {type(stmt).__name__} at line {stmt.line}"
        )

    def _decl(self, decl: cast.DeclStmt) -> _StmtFn:
        ty = T.parse_type_name(decl.type_name)
        name = decl.name
        if decl.init is None:
            if isinstance(ty, T.VectorType):
                width, dtype = ty.width, ty.dtype

                def run_zero_vec(ctx: _Ctx) -> None:
                    ctx.env[name] = np.zeros(width, dtype=dtype)

                return run_zero_vec
            zero = ty.dtype.type(0)  # type: ignore[union-attr]

            def run_zero(ctx: _Ctx) -> None:
                ctx.env[name] = zero

            return run_zero
        init = self.expr(decl.init)

        def run_init(ctx: _Ctx) -> None:
            ctx.env[name] = cast_value(init(ctx), ty)

        return run_init

    def reduction(self, var: str, value_expr: cast.Expr) -> _StmtFn:
        value = self.expr(value_expr)

        def run_reduction(ctx: _Ctx) -> None:
            if var not in ctx.env:
                raise UnsupportedKernelError(f"reduction variable {var!r} unbound")
            ctx.env[var] = reduce_sum(ctx.env[var], value(ctx))

        return run_reduction

    # -- expressions ----------------------------------------------------------

    def expr(self, expr: cast.Expr) -> _ExprFn:
        ty = self.program.type_of(expr)
        if isinstance(expr, (cast.IntLiteral, cast.FloatLiteral)):
            value = ty.dtype.type(expr.value)  # type: ignore[union-attr]
            return lambda ctx: value
        if isinstance(expr, cast.Ident):
            name, line = expr.name, expr.line

            def run_ident(ctx: _Ctx) -> object:
                try:
                    return ctx.env[name]
                except KeyError:
                    raise UnsupportedKernelError(
                        f"unbound {name!r} at line {line}"
                    ) from None

            return run_ident
        if isinstance(expr, cast.Unary):
            if expr.op in ("++", "--", "p++", "p--"):
                raise UnsupportedKernelError(
                    f"increment of locals at line {expr.line} is loop-carried state"
                )
            op, line = expr.op, expr.line
            operand = self.expr(expr.operand)
            return lambda ctx: apply_unary(op, operand(ctx), ty, line)
        if isinstance(expr, cast.Binary):
            op = expr.op
            left = self.expr(expr.left)
            right = self.expr(expr.right)
            return lambda ctx: apply_binary(op, left(ctx), right(ctx), ty)
        if isinstance(expr, cast.Assign):
            return self._assign(expr)
        if isinstance(expr, cast.Conditional):
            cond = self.expr(expr.cond)
            then = self.expr(expr.then)
            other = self.expr(expr.other)

            def run_cond(ctx: _Ctx) -> object:
                chosen = np.where(
                    np.asarray(cond(ctx)) != 0, then(ctx), other(ctx)
                )
                return cast_value(chosen, ty)

            return run_cond
        if isinstance(expr, cast.Call):
            return self._call(expr, ty)
        if isinstance(expr, cast.Index):
            return self._load(expr)
        if isinstance(expr, cast.Swizzle):
            base = self.expr(expr.base)
            base_ty = self.program.type_of(expr.base)
            assert isinstance(base_ty, T.VectorType)
            idx = list(swizzle_indices(expr.components, base_ty.width, expr.line))
            if len(idx) == 1:
                only = idx[0]
                return lambda ctx: np.asarray(base(ctx))[..., only]
            return lambda ctx: np.asarray(base(ctx))[..., idx]
        if isinstance(expr, cast.Cast):
            operand = self.expr(expr.operand)
            return lambda ctx: cast_value(operand(ctx), ty)
        if isinstance(expr, cast.VectorLiteral):
            assert isinstance(ty, T.VectorType)
            elements = [self.expr(el) for el in expr.elements]
            width, dtype = ty.width, ty.dtype

            def run_vec(ctx: _Ctx) -> object:
                values = [np.asarray(el(ctx), dtype=dtype) for el in elements]
                if len(values) == 1:
                    values = values * width
                return np.stack(np.broadcast_arrays(*values), axis=-1)

            return run_vec
        raise UnsupportedKernelError(
            f"unsupported expression {type(expr).__name__} at line {expr.line}"
        )

    def _assign(self, expr: cast.Assign) -> _ExprFn:
        ty = self.program.type_of(expr.target)
        value = self.expr(expr.value)
        if expr.op != "=":
            op = expr.op[:-1]
            current = self.expr(expr.target)
            plain = value

            def compound(ctx: _Ctx) -> object:
                return apply_binary(op, current(ctx), plain(ctx), ty)

            value = compound
        target = expr.target
        if isinstance(target, cast.Ident):
            name = target.name

            def run_store_local(ctx: _Ctx) -> object:
                v = cast_value(value(ctx), ty)
                ctx.env[name] = v
                return v

            return run_store_local
        if isinstance(target, cast.Index):
            store = self._store(target)

            def run_store_mem(ctx: _Ctx) -> object:
                v = cast_value(value(ctx), ty)
                store(ctx, v)
                return v

            return run_store_mem
        raise UnsupportedKernelError(f"unsupported store target at line {expr.line}")

    # -- memory ----------------------------------------------------------------

    def _load(self, expr: cast.Index) -> _ExprFn:
        if not isinstance(expr.base, cast.Ident):
            raise UnsupportedKernelError(f"indirect load at line {expr.line}")
        name, line = expr.base.name, expr.line
        index = self.expr(expr.index)

        def run_load(ctx: _Ctx) -> object:
            view, _element = buffer_view(ctx.buffers, name, line)
            idx = np.asarray(index(ctx), dtype=np.int64)
            if np.any(idx < 0) or np.any(idx >= view.shape[0]):
                raise UnsupportedKernelError(
                    f"out-of-bounds load from {name!r} at line {line}"
                )
            return view[idx]

        return run_load

    def _store(self, target: cast.Index) -> Callable[[_Ctx, object], None]:
        if not isinstance(target.base, cast.Ident):
            raise UnsupportedKernelError(f"indirect store at line {target.line}")
        name, line = target.base.name, target.line
        index = self.expr(target.index)

        def run_store(ctx: _Ctx, value: object) -> None:
            view, _element = buffer_view(ctx.buffers, name, line)
            idx = np.asarray(index(ctx), dtype=np.int64)
            if np.any(idx < 0) or np.any(idx >= view.shape[0]):
                raise UnsupportedKernelError(
                    f"out-of-bounds store to {name!r} at line {line}"
                )
            store_to_view(view, idx, value)

        return run_store

    # -- calls ----------------------------------------------------------------

    def _call(self, expr: cast.Call, ty: T.Type) -> _ExprFn:
        name = expr.func
        vec_mem = vector_memory_builtin(name)
        if vec_mem is not None:
            return self._vector_memory(expr, vec_mem)
        if name in BUILTIN_WORKITEM_FUNCTIONS:
            return self._workitem(expr, name)
        if name in BUILTIN_MATH_FUNCTIONS:
            args = [self.expr(a) for a in expr.args]
            return lambda ctx: apply_math(name, [a(ctx) for a in args], ty)
        raise UnsupportedKernelError(f"unsupported call {name!r} at line {expr.line}")

    def _workitem(self, expr: cast.Call, name: str) -> _ExprFn:
        if name == "get_work_dim":
            one = np.int64(1)
            return lambda ctx: one
        dim_expr = expr.args[0]
        dim = dim_expr.value if isinstance(dim_expr, cast.IntLiteral) else None
        zero = np.int64(0)
        if dim == 0:
            if name in ("get_global_id", "get_group_id"):
                return lambda ctx: ctx.env.get("gid0", zero)
            if name in ("get_global_size", "get_num_groups"):
                return lambda ctx: np.int64(ctx.n_items)
            value = zero if name == "get_local_id" else np.int64(1)
            return lambda ctx: value
        defaults = {
            "get_global_id": zero,
            "get_local_id": zero,
            "get_group_id": zero,
            "get_global_size": np.int64(1),
            "get_local_size": np.int64(1),
            "get_num_groups": np.int64(1),
        }
        value = defaults[name]
        return lambda ctx: value

    def _vector_memory(self, expr: cast.Call, vec_mem: tuple[str, int]) -> _ExprFn:
        kind, width = vec_mem
        ptr_expr = expr.args[-1]
        if not isinstance(ptr_expr, cast.Ident):
            raise UnsupportedKernelError(
                f"vload/vstore through a computed pointer at line {expr.line}"
            )
        name, line = ptr_expr.name, expr.line
        if kind == "load":
            offset_fn = self.expr(expr.args[0])

            def run_vload(ctx: _Ctx) -> object:
                view = vector_view(ctx.buffers, name, width, line)
                offset = np.asarray(offset_fn(ctx), dtype=np.int64)
                if np.any(offset < 0) or np.any(offset >= view.shape[0]):
                    raise UnsupportedKernelError(
                        f"vload/vstore out of bounds at line {line}"
                    )
                return view[offset]

            return run_vload
        data_fn = self.expr(expr.args[0])
        offset_fn = self.expr(expr.args[1])

        def run_vstore(ctx: _Ctx) -> object:
            view = vector_view(ctx.buffers, name, width, line)
            data = data_fn(ctx)
            offset = np.asarray(offset_fn(ctx), dtype=np.int64)
            if np.any(offset < 0) or np.any(offset >= view.shape[0]):
                raise UnsupportedKernelError(
                    f"vload/vstore out of bounds at line {line}"
                )
            vector_store(view, offset, data)
            return None

        return run_vstore
