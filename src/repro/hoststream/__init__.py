"""A real STREAM measurement of the host running this reproduction.

Everything else in this package simulates the paper's 2018 targets; this
module keeps one leg on real silicon: a numpy implementation of the four
STREAM kernels, timed with the same min-of-N discipline as stream.c, so
users can sanity-check the simulated numbers against a live machine.
"""

from __future__ import annotations

from .reference import expected_scalars, stream_reference
from .stream import HostStreamResult, checktick, classic_report, run_host_stream

__all__ = [
    "HostStreamResult",
    "run_host_stream",
    "checktick",
    "classic_report",
    "stream_reference",
    "expected_scalars",
]
