"""The NumPy host-stream reference used by differential verification.

:mod:`repro.verify.conformance` compares every generated-kernel variant
against *one* canonical host-side computation of the STREAM semantics.
That computation lives here, next to the real-silicon host benchmark,
because the two must agree by construction: :func:`run_host_stream`
times exactly these NumPy expressions, and the verifier treats them as
ground truth.

Association order is part of the contract. Each kernel is a single
elementwise NumPy expression evaluated in source order —
``TRIAD`` is ``np.add(b, np.multiply(q, c))``, i.e. ``b + (q * c)``
with one rounding per operation and **no** fused multiply-add. The oclc
interpreter evaluates the generated OpenCL-C the same way (per-element
NumPy ufuncs in source association), which is why the pinned ULP
budgets in :mod:`repro.verify.tolerance` can be tight; see the audit
note there.
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import SCALAR_Q, reference
from ..core.params import KernelName

__all__ = ["stream_reference", "expected_scalars"]


def stream_reference(
    kernel: KernelName,
    arrays: dict[str, np.ndarray],
    *,
    touched_words: int | None = None,
) -> dict[str, np.ndarray]:
    """Expected array state after one kernel application.

    A thin, documented front door over
    :func:`repro.core.kernels.reference` so verification code names its
    ground truth explicitly. ``arrays`` is not mutated; dtype semantics
    (int32/float32/float64 arithmetic, one rounding per operation)
    follow the input arrays.
    """
    return reference(kernel, arrays, touched_words=touched_words)


def expected_scalars(q: float = float(SCALAR_Q)) -> tuple[float, float, float]:
    """Final (a, b, c) scalar values after one COPY→SCALE→ADD→TRIAD pass.

    STREAM's arrays start constant (a=1, b=2, c=0) and each kernel maps
    constants to constants, so the whole sequence reduces to scalar
    recurrences — stream.c validates exactly this way. Shared by the
    real host benchmark's solution check and the verification tests.
    """
    ea, eb, ec = 1.0, 2.0, 0.0
    ec = ea  # copy
    eb = q * ec  # scale
    ec = ea + eb  # add
    ea = eb + q * ec  # triad
    return ea, eb, ec
