"""numpy STREAM on the actual host machine.

Follows stream.c: arrays far larger than the last-level cache, ten
timed iterations, report min/avg/max time and best-rate bandwidth with
STREAM's byte counting (2 arrays for COPY/SCALE, 3 for ADD/TRIAD).

numpy's elementwise kernels are memory-bound at these sizes, so the
numbers approximate the machine's sustainable bandwidth from a single
core (numpy does not parallelize these ufuncs) — a real-world analogue
of the paper's single-work-item CPU observations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.params import KernelName
from ..errors import BenchmarkError, ValidationError
from ..units import MIB, bandwidth_gbs, format_bandwidth, format_size

__all__ = ["HostStreamResult", "run_host_stream", "checktick", "classic_report"]


def checktick(samples: int = 20) -> float:
    """Measure the usable timer granularity, like stream.c's checktick().

    Returns the minimum observed positive delta of ``perf_counter`` in
    seconds. stream.c refuses measurements shorter than 20 ticks; the
    report flags kernels whose best time is below that threshold.
    """
    deltas = []
    for _ in range(samples):
        t1 = time.perf_counter()
        t2 = time.perf_counter()
        while t2 <= t1:
            t2 = time.perf_counter()
        deltas.append(t2 - t1)
    return min(deltas)


@dataclass(frozen=True)
class HostStreamResult:
    """One kernel's measurement on the real host."""

    kernel: KernelName
    array_bytes: int
    times: tuple[float, ...]
    moved_bytes: int

    @property
    def min_time(self) -> float:
        return min(self.times)

    @property
    def avg_time(self) -> float:
        return sum(self.times) / len(self.times)

    @property
    def max_time(self) -> float:
        return max(self.times)

    @property
    def bandwidth_gbs(self) -> float:
        return bandwidth_gbs(self.moved_bytes, self.min_time)


def run_host_stream(
    *,
    array_bytes: int = 64 * MIB,
    ntimes: int = 10,
    dtype: str = "float64",
) -> dict[KernelName, HostStreamResult]:
    """Run the four STREAM kernels on this machine with numpy.

    Returns per-kernel results; raises only for nonsensical arguments.
    """
    if ntimes < 1:
        raise BenchmarkError(f"ntimes must be >= 1, got {ntimes}")
    dt = np.dtype(dtype)
    n = array_bytes // dt.itemsize
    if n < 1:
        raise BenchmarkError("array size smaller than one element")
    a = np.full(n, 1, dtype=dt)
    b = np.full(n, 2, dtype=dt)
    c = np.zeros(n, dtype=dt)
    q = dt.type(3)

    kernels = {
        KernelName.COPY: lambda: np.copyto(c, a),
        KernelName.SCALE: lambda: np.multiply(c, q, out=b),
        KernelName.ADD: lambda: np.add(a, b, out=c),
        KernelName.TRIAD: lambda: np.add(b, q * c, out=a),
    }
    results: dict[KernelName, HostStreamResult] = {}
    for kernel, fn in kernels.items():
        fn()  # warm-up / first-touch
        times = []
        for _ in range(ntimes):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        moved = array_bytes * kernel.arrays_touched
        results[kernel] = HostStreamResult(
            kernel=kernel,
            array_bytes=array_bytes,
            times=tuple(times),
            moved_bytes=moved,
        )

    # stream.c-style solution check: the arrays hold the values the
    # kernel sequence implies (each kernel ran warm-up + ntimes with
    # constant-valued arrays, so scalars suffice)
    from .reference import expected_scalars

    ea, eb, ec = expected_scalars(float(q))
    for name, arr, want in (("a", a, ea), ("b", b, eb), ("c", c, ec)):
        if dt.kind == "f":
            err = float(np.max(np.abs(arr - want)))
            if err > 1e-8 * max(abs(want), 1.0):
                raise ValidationError(
                    f"host STREAM array {name!r} failed validation "
                    f"(max err {err:.3e})"
                )
    return results


def classic_report(
    results: dict[KernelName, HostStreamResult], *, tick: float | None = None
) -> str:
    """A stream.c-style report block for host results."""
    if not results:
        raise BenchmarkError("no results to report")
    if tick is None:
        tick = checktick()
    first = next(iter(results.values()))
    lines = [
        "-" * 62,
        "STREAM (numpy host baseline)",
        "-" * 62,
        f"Array size = {first.array_bytes // 8} (elements), "
        f"{format_size(first.array_bytes)} per array",
        f"Each kernel was executed {len(first.times)} times; the *best* "
        "time is reported.",
        f"Timer granularity ~ {tick * 1e9:.0f} ns.",
        "-" * 62,
        f"{'Function':<10}{'Best Rate':>14}{'Avg time':>12}{'Min time':>12}"
        f"{'Max time':>12}",
    ]
    for kernel, r in results.items():
        note = " (*)" if r.min_time < 20 * tick else ""
        lines.append(
            f"{kernel.value:<10}{format_bandwidth(r.bandwidth_gbs * 1e9):>14}"
            f"{r.avg_time * 1e3:>10.3f}ms{r.min_time * 1e3:>10.3f}ms"
            f"{r.max_time * 1e3:>10.3f}ms{note}"
        )
    if any(r.min_time < 20 * tick for r in results.values()):
        lines.append("(*) best time below 20 timer ticks: increase the array size")
    lines.append("-" * 62)
    return "\n".join(lines)
