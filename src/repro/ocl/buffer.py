"""Device memory objects.

A :class:`Buffer` is a linear allocation in a context, backed by a
numpy array that plays the role of both the host shadow copy and the
device storage (the functional simulation has a single address space).
What *is* modelled faithfully is **residency**: reads/writes through a
queue move the buffer across the simulated PCIe link and the event
timing reflects it, which is how MP-STREAM's host↔device stream mode
measures interconnect bandwidth.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

import numpy as np

from ..errors import InvalidOperationError, InvalidValueError

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context

__all__ = ["MemFlags", "Buffer"]


class MemFlags(enum.Flag):
    """Subset of cl_mem_flags that affects behaviour we model."""

    READ_WRITE = enum.auto()
    READ_ONLY = enum.auto()
    WRITE_ONLY = enum.auto()
    COPY_HOST_PTR = enum.auto()

    @staticmethod
    def default() -> "MemFlags":
        return MemFlags.READ_WRITE


class Buffer:
    """A linear memory object.

    Parameters
    ----------
    context:
        Owning context.
    size:
        Size in bytes. Mutually exclusive with ``hostbuf``.
    flags:
        Access flags; kernels writing a READ_ONLY buffer raise.
    hostbuf:
        Optional initial contents (implies ``COPY_HOST_PTR``); copied,
        as in OpenCL, so later host-side mutation of the source array
        does not affect the device copy.
    """

    def __init__(
        self,
        context: "Context",
        *,
        size: int | None = None,
        flags: MemFlags = MemFlags.READ_WRITE,
        hostbuf: np.ndarray | None = None,
    ):
        if (size is None) == (hostbuf is None):
            raise InvalidValueError("specify exactly one of size= or hostbuf=")
        if hostbuf is not None:
            arr = np.ascontiguousarray(hostbuf).reshape(-1)
            self._storage = arr.copy()
            self._size = int(self._storage.nbytes)
            flags |= MemFlags.COPY_HOST_PTR
        else:
            if size is None or size <= 0:
                raise InvalidValueError(f"buffer size must be positive, got {size}")
            self._storage = np.zeros(int(size), dtype=np.uint8)
            self._size = int(size)
        self.context = context
        self.flags = flags
        self._released = False
        #: where the authoritative copy lives; queue transfers flip this
        self.residency: str = "device" if hostbuf is None else "host"
        context._register_buffer(self)

    # -- introspection ---------------------------------------------------------

    @property
    def size(self) -> int:
        """Size in bytes."""
        return self._size

    @property
    def released(self) -> bool:
        return self._released

    def view(self, dtype: np.dtype | str) -> np.ndarray:
        """A typed view of the buffer's storage (device-side pointer)."""
        self._check_alive()
        dt = np.dtype(dtype)
        if self._size % dt.itemsize:
            raise InvalidValueError(
                f"buffer of {self._size} bytes is not a whole number of {dt} items"
            )
        return self._storage.view(dt)

    def writable(self) -> bool:
        return not (self.flags & MemFlags.READ_ONLY)

    def readable(self) -> bool:
        return not (self.flags & MemFlags.WRITE_ONLY)

    # -- lifecycle ----------------------------------------------------------------

    def release(self) -> None:
        """Free the buffer; further use raises (mirrors clReleaseMemObject)."""
        self._released = True

    def _check_alive(self) -> None:
        if self._released:
            raise InvalidOperationError("use of a released buffer")

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        state = "released" if self._released else self.residency
        return f"<Buffer {self._size}B {state}>"
