"""Command queues with a virtual device clock.

The queue is where functional simulation and performance modelling
meet: ``enqueue_nd_range_kernel`` *executes* the kernel on the numpy
buffers (specialized fast path, interpreter fallback) so results can be
validated, and *times* it by asking the device model — then stamps an
:class:`~repro.ocl.events.Event` with virtual-clock timestamps, which is
exactly what the benchmark's host code measures.

Two scheduling modes, as in OpenCL:

* **in-order** (default): every command implicitly depends on the
  previous one; timestamps are strictly sequential.
* **out-of-order**: commands start when their ``wait_for`` events have
  completed *and* their engine is free. The device exposes three
  engines — the compute engine and two DMA engines (h2d, d2h) — so
  transfers overlap kernels, which is how double-buffered streaming
  hides PCIe time.

Functional effects are applied eagerly at enqueue time in program
order; with correct ``wait_for`` dependencies that matches any legal
execution order (and without them, real OpenCL would race too).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

import numpy as np

from ..errors import InvalidValueError, LaunchError, UnsupportedKernelError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .buffer import Buffer
from .events import CommandType, Event

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .context import Context
    from .platform import Device

__all__ = ["CommandQueue", "EXEC_LANES"]

_ENGINES = ("compute", "h2d", "d2h")

#: valid :attr:`CommandQueue.exec_lane` settings and the fallback chain
#: each implies. ``auto`` prefers the whole-NDRange array lane, drops to
#: compiled closures when a kernel (or a launch) is ineligible, and to
#: the tree-walking interpreter as the total fallback; the forced
#: settings exist for debugging/differential testing and still end at
#: the interpreter, which executes everything.
_LANE_ORDER: dict[str, tuple[str, ...]] = {
    "auto": ("vectorized", "compiled", "interpreted"),
    "vectorized": ("vectorized", "interpreted"),
    "compiled": ("compiled", "interpreted"),
    "interp": ("interpreted",),
}

EXEC_LANES = tuple(_LANE_ORDER)


class CommandQueue:
    """A command queue on one device, with profiling always enabled."""

    def __init__(
        self,
        context: "Context",
        device: "Device | None" = None,
        *,
        out_of_order: bool = False,
    ):
        if device is None:
            device = context.devices[0]
        if device not in context.devices:
            raise InvalidValueError("device is not part of the context")
        self.context = context
        self.device = device
        self.out_of_order = out_of_order
        self.events: list[Event] = []
        self._engine_free: dict[str, float] = {e: 0.0 for e in _ENGINES}
        self._last_event: Event | None = None
        #: host-side enqueue clock (monotone, nearly free per command)
        self._enqueue_clock: float = 0.0
        #: per-point command/byte counters; reset by :meth:`reset_profile`
        self.counters: dict[str, float] = self._fresh_counters()
        self._specialized_cache: dict[tuple[int, str], object] = {}
        #: execution-lane preference, one of :data:`EXEC_LANES`
        self.exec_lane: str = "auto"
        #: set by :meth:`external_execution`: functional results already
        #: live in the buffers, so :meth:`_execute` must not re-run
        self._skip_execute = False
        #: fault-injection port (see :mod:`repro.faults`): when set, the
        #: queue calls it with a site name — ``"launch"`` before a kernel
        #: launch (the hook may raise to model a flaky driver) and
        #: ``"readback"`` with the destination array after a read (the
        #: hook may corrupt it). ``None`` disables injection entirely.
        self.fault_hook: Callable[..., None] | None = None

    @property
    def now(self) -> float:
        """Virtual time when all submitted work completes."""
        return max(self._engine_free.values())

    @staticmethod
    def _fresh_counters() -> dict[str, float]:
        return {
            "commands": 0,
            "kernel_launches": 0,
            "h2d_bytes": 0,
            "d2h_bytes": 0,
            "copy_bytes": 0,
            "virtual_busy_s": 0.0,
        }

    def _count_command(
        self, command: CommandType, duration: float, detail: dict
    ) -> None:
        counters = self.counters
        counters["commands"] += 1
        counters["virtual_busy_s"] += duration
        obs_metrics.count("queue.commands")
        if command is CommandType.ND_RANGE_KERNEL:
            counters["kernel_launches"] += 1
            obs_metrics.count("queue.kernel_launches")
        elif command is CommandType.WRITE_BUFFER:
            nbytes = int(detail.get("bytes", 0))
            counters["h2d_bytes"] += nbytes
            obs_metrics.count("queue.h2d_bytes", nbytes)
        elif command is CommandType.READ_BUFFER:
            nbytes = int(detail.get("bytes", 0))
            counters["d2h_bytes"] += nbytes
            obs_metrics.count("queue.d2h_bytes", nbytes)
        elif command is CommandType.COPY_BUFFER:
            nbytes = int(detail.get("bytes", 0))
            counters["copy_bytes"] += nbytes
            obs_metrics.count("queue.copy_bytes", nbytes)

    # -- scheduling core ---------------------------------------------------------

    def _schedule(
        self,
        command: CommandType,
        engine: str,
        duration: float,
        detail: dict,
        wait_for: Sequence[Event] | None,
        overhead: float = 0.0,
    ) -> Event:
        enqueued = self._enqueue_clock
        self._enqueue_clock += 1e-9  # host enqueue cost: negligible, monotone
        deps_end = 0.0
        if wait_for:
            for dep in wait_for:
                if not dep.complete:
                    raise InvalidValueError("wait_for contains an incomplete event")
                deps_end = max(deps_end, dep.end)
        if not self.out_of_order and self._last_event is not None:
            deps_end = max(deps_end, self._last_event.end)
        # QUEUED is stamped when the command becomes eligible (its
        # dependencies are met), so event.latency measures this command's
        # own cost — engine wait + launch overhead + execution — exactly
        # what STREAM-style per-repetition timing wants.
        submit = max(enqueued, deps_end)
        start = max(submit, self._engine_free[engine]) + overhead
        end = start + duration
        event = Event(
            command=command,
            queued=submit,
            submit=submit,
            start=start,
            end=end,
            complete=True,
            detail=detail,
        )
        self._engine_free[engine] = end
        self._last_event = event
        self.events.append(event)
        self._count_command(command, duration, detail)
        return event

    # -- transfers -----------------------------------------------------------------

    def enqueue_write_buffer(
        self,
        buffer: Buffer,
        src: np.ndarray,
        *,
        wait_for: Sequence[Event] | None = None,
    ) -> Event:
        """Host -> device transfer over the simulated interconnect."""
        with obs_trace.span("write_buffer", "queue") as span:
            buffer._check_alive()
            src_flat = np.ascontiguousarray(src).reshape(-1)
            if src_flat.nbytes > buffer.size:
                raise InvalidValueError(
                    f"source of {src_flat.nbytes} bytes exceeds buffer ({buffer.size})"
                )
            buffer.view(src_flat.dtype)[: src_flat.size] = src_flat
            buffer.residency = "device"
            seconds = self.device.model.transfer_time(src_flat.nbytes, "h2d")
            span.set(bytes=src_flat.nbytes, virtual_s=seconds)
            return self._schedule(
                CommandType.WRITE_BUFFER,
                "h2d",
                seconds,
                {"bytes": src_flat.nbytes, "dir": "h2d"},
                wait_for,
            )

    def enqueue_read_buffer(
        self,
        buffer: Buffer,
        dst: np.ndarray,
        *,
        wait_for: Sequence[Event] | None = None,
    ) -> Event:
        """Device -> host transfer over the simulated interconnect."""
        with obs_trace.span("read_buffer", "queue") as span:
            buffer._check_alive()
            dst_flat = dst.reshape(-1)
            if dst_flat.nbytes > buffer.size:
                raise InvalidValueError(
                    f"destination of {dst_flat.nbytes} bytes exceeds buffer ({buffer.size})"
                )
            dst_flat[:] = buffer.view(dst_flat.dtype)[: dst_flat.size]
            if self.fault_hook is not None:
                self.fault_hook("readback", dst_flat)
            seconds = self.device.model.transfer_time(dst_flat.nbytes, "d2h")
            span.set(bytes=dst_flat.nbytes, virtual_s=seconds)
            return self._schedule(
                CommandType.READ_BUFFER,
                "d2h",
                seconds,
                {"bytes": dst_flat.nbytes, "dir": "d2h"},
                wait_for,
            )

    def enqueue_copy_buffer(
        self,
        src: Buffer,
        dst: Buffer,
        *,
        wait_for: Sequence[Event] | None = None,
    ) -> Event:
        """Device-to-device copy within global memory."""
        src._check_alive()
        dst._check_alive()
        if src.size > dst.size:
            raise InvalidValueError("source buffer larger than destination")
        dst.view(np.uint8)[: src.size] = src.view(np.uint8)
        seconds = self.device.model.copy_time(src.size)
        return self._schedule(
            CommandType.COPY_BUFFER,
            "compute",
            seconds,
            {"bytes": src.size},
            wait_for,
        )

    def enqueue_marker(
        self, *, wait_for: Sequence[Event] | None = None
    ) -> Event:
        """A zero-duration synchronization point (clEnqueueMarker)."""
        return self._schedule(CommandType.MARKER, "compute", 0.0, {}, wait_for)

    # -- kernels ----------------------------------------------------------------------

    def enqueue_nd_range_kernel(
        self,
        kernel: "Kernel",
        global_size: tuple[int, ...] | int,
        local_size: tuple[int, ...] | None = None,
        *,
        wait_for: Sequence[Event] | None = None,
    ) -> Event:
        """Launch a kernel: run it functionally, time it with the model."""
        from ..devices.base import Launch
        from ..oclc.interp import BufferArg

        with obs_trace.span("nd_range_kernel", "queue") as span:
            if self.fault_hook is not None:
                self.fault_hook("launch")
            if isinstance(global_size, int):
                global_size = (global_size,)
            global_size = tuple(int(g) for g in global_size)
            kernel.validate_launch(self.device, global_size, local_size)
            args = kernel.bound_args()

            plan = kernel.program.plan_for(self.device)
            if plan.ir.name != kernel.name:
                plan = self.device.model.plan_for_kernel(plan, kernel.name)

            # Write-protection and residency checks.
            migrated = 0
            for name, value in args.items():
                if isinstance(value, Buffer):
                    access = [a for a in plan.ir.accesses if a.param == name]
                    if any(a.is_write for a in access) and not value.writable():
                        raise LaunchError(
                            f"kernel {kernel.name!r} writes read-only buffer {name!r}"
                        )
                    if value.residency == "host":
                        migrated += value.size
                        value.residency = "device"

            # Functional execution.
            call_args = {
                name: BufferArg(value.view(self._element_dtype(kernel, name)))
                if isinstance(value, Buffer)
                else value
                for name, value in args.items()
            }
            self._execute(kernel, global_size, local_size, call_args)

            # Performance model.
            launch = Launch(
                global_size=global_size,
                local_size=local_size,
                buffer_bytes={
                    n: v.size for n, v in args.items() if isinstance(v, Buffer)
                },
            )
            timing = self.device.model.kernel_timing(plan, launch)
            detail = dict(timing.detail)
            migration_s = 0.0
            if migrated:
                migration_s = self.device.model.transfer_time(migrated, "h2d")
                detail["implicit_migration_s"] = migration_s
                detail["implicit_migration_bytes"] = migrated
            span.set(
                kernel=kernel.name,
                global_size=list(global_size),
                virtual_s=timing.execution_s,
            )
            return self._schedule(
                CommandType.ND_RANGE_KERNEL,
                "compute",
                timing.execution_s,
                detail,
                wait_for,
                overhead=timing.launch_overhead_s + migration_s,
            )

    def _element_dtype(self, kernel: "Kernel", name: str) -> np.dtype:
        from .types import PointerType, ScalarType, VectorType

        ty = kernel.param_types[name]
        assert isinstance(ty, PointerType)
        pointee = ty.pointee
        if isinstance(pointee, (ScalarType, VectorType)):
            return pointee.dtype
        raise InvalidValueError(f"cannot derive dtype for parameter {name!r}")

    def _lane_order(self) -> tuple[str, ...]:
        order = _LANE_ORDER.get(self.exec_lane)
        if order is None:
            raise InvalidValueError(
                f"exec_lane must be one of {EXEC_LANES}, got {self.exec_lane!r}"
            )
        return order

    @staticmethod
    def _runner_lane(runner: object) -> str:
        from ..oclc.compile import CompiledKernel
        from ..oclc.vectorize import VectorKernel

        if isinstance(runner, VectorKernel):
            return "vectorized"
        if isinstance(runner, CompiledKernel):
            return "compiled"
        return "interpreted"

    def _build_runner(self, checked: object, name: str, lanes: tuple[str, ...]):
        """First lane in ``lanes`` whose compile accepts this kernel."""
        from ..oclc.compile import compile_kernel
        from ..oclc.interp import KernelInterpreter
        from ..oclc.vectorize import vectorize_kernel

        factories = {
            "vectorized": vectorize_kernel,
            "compiled": compile_kernel,
            "interpreted": KernelInterpreter,
        }
        for lane in lanes[:-1]:
            try:
                return factories[lane](checked, name)
            except UnsupportedKernelError:
                continue
        return factories[lanes[-1]](checked, name)

    def _execute(
        self,
        kernel: "Kernel",
        global_size: tuple[int, ...],
        local_size: tuple[int, ...] | None,
        call_args: dict[str, object],
    ) -> None:
        if self._skip_execute:
            # results were computed externally (engine slot batching)
            obs_metrics.count("fastpath.runs.primed")
            return
        checked = kernel.program.checked
        assert checked is not None
        order = self._lane_order()
        cache_key = (id(checked), kernel.name)
        runner = self._specialized_cache.get(cache_key)
        if runner is None or self._runner_lane(runner) not in order:
            runner = self._build_runner(checked, kernel.name, order)
            self._specialized_cache[cache_key] = runner
        while True:
            lane = self._runner_lane(runner)
            try:
                runner.run(global_size, call_args, local_size)
                break
            except UnsupportedKernelError:
                # The launch shape/arguments turned out unsupported at
                # run time: demote to the next lane and retry. The
                # interpreter is total, so the chain terminates.
                remaining = order[order.index(lane) + 1 :]
                if not remaining:
                    raise
                runner = self._build_runner(checked, kernel.name, remaining)
                self._specialized_cache[cache_key] = runner
        obs_metrics.count(f"fastpath.runs.{lane}")

    @contextmanager
    def external_execution(self) -> Iterator[None]:
        """Launches inside this context skip functional execution.

        The engine's slot-batching path computes a point's functional
        results once with :meth:`~repro.oclc.vectorize.VectorKernel.run_batch`
        and copies them into the buffers; the timed warmup/measurement
        launches then only need the performance model, the virtual
        clock and the event stream — re-running the kernel would just
        recompute identical idempotent results.
        """
        prev = self._skip_execute
        self._skip_execute = True
        try:
            yield
        finally:
            self._skip_execute = prev

    # -- bookkeeping ----------------------------------------------------------------

    def finish(self) -> float:
        """Wait for everything (virtually); returns the completion time."""
        return self.now

    def reset_profile(self) -> None:
        """Restart the virtual clock, drop events and zero the counters.

        Warm state (the kernel-specialization cache) is kept. The
        execution engine calls this between measurement points so a
        long-lived queue produces timestamps — and therefore latencies —
        bit-identical to a fresh queue's: subtracting nearby large
        floats (late in a campaign's virtual time) would otherwise
        drift in the last ulps. The per-queue :attr:`counters` restart
        too, so per-point command/byte statistics never leak across
        points of a long campaign (campaign-wide totals live in the
        :mod:`repro.obs.metrics` registry instead).
        """
        self._engine_free = {e: 0.0 for e in _ENGINES}
        self._last_event = None
        self._enqueue_clock = 0.0
        self.events.clear()
        self.counters = self._fresh_counters()
