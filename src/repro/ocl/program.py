"""Programs: source -> per-device builds.

``Program`` mirrors ``clCreateProgramWithSource`` + ``clBuildProgram``:
the OpenCL-C front-end checks the source once (with the build's ``-D``
defines), then each device's performance model derives its
:class:`~repro.devices.base.ExecutionPlan` — the analogue of the vendor
offline compile, including FPGA resource estimation, which can fail the
build just like a real place-and-route overflow would.

:class:`BuildCache` is the campaign-scoped build cache: it content-
addresses front-end artifacts and device plans by
``(source, effective -D defines, device)``, so a sweep rebuilds nothing
it has already built. Pass one to :meth:`Program.build` (the execution
engine does this for every point).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Mapping

from ..errors import (
    BuildError,
    InvalidValueError,
    OclcError,
    ReproError,
    TransientError,
)
from ..obs import metrics as obs_metrics
from .context import Context

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.base import BuildOptions, ExecutionPlan
    from ..oclc import CheckedProgram
    from .kernel import Kernel
    from .platform import Device

__all__ = ["Program", "BuildCache"]


class BuildCache:
    """Content-addressed build artifacts for one campaign.

    Front-end results are keyed by ``(source, effective defines)`` and
    additionally funnel through the process-wide
    :func:`repro.oclc.compile_source_cached` memo; device plans are
    stored via each :class:`~repro.devices.base.DeviceModel`'s
    plan-cache hook (so independent campaigns against the same device
    still share plans). Build *failures* are cached too — a sweep
    retrying an FPGA configuration that does not fit skips the
    re-estimation and re-raises the recorded :class:`BuildError`.

    All methods are thread-safe; one instance is shared across the
    parallel sweep executor's worker engines.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._checked: dict[tuple, "CheckedProgram"] = {}
        self._counters = {
            "frontend_hits": 0,
            "frontend_misses": 0,
            "plan_hits": 0,
            "plan_misses": 0,
        }

    # -- stages ------------------------------------------------------------------

    def frontend(
        self, source: str, defines: Mapping[str, str | int] | None
    ) -> "tuple[CheckedProgram, bool]":
        """Lex/parse/type-check ``source`` once per distinct key.

        Returns ``(checked, hit)``. Front-end *errors* are not cached
        (generated sources always compile; hand-written ones fail fast
        anyway).
        """
        from ..oclc import compile_source_cached, frontend_key

        key = frontend_key(source, defines)
        with self._lock:
            cached = self._checked.get(key)
            if cached is not None:
                self._counters["frontend_hits"] += 1
        if cached is not None:
            obs_metrics.count("build_cache.frontend_hits")
            return cached, True
        self._bump("frontend_misses")
        checked = compile_source_cached(
            source, {k: str(v) for k, v in (defines or {}).items()}
        )
        with self._lock:
            self._checked[key] = checked
        return checked, False

    def plan(
        self,
        source: str,
        defines: Mapping[str, str | int] | None,
        device: "Device",
        build: "Callable[[], ExecutionPlan]",
    ) -> "tuple[ExecutionPlan, bool]":
        """Device build once per ``(source, defines, device)`` triple.

        Returns ``(plan, hit)``; a cached failure re-raises the original
        exception (and counts as a hit — the expensive estimation was
        skipped). *Transient* failures
        (:class:`~repro.errors.TransientError` — a toolchain flake, not
        a design that does not fit) are never cached: the retry that
        follows must get a fresh build, and a later campaign must not
        replay a one-off failure as if it were permanent.
        """
        from ..oclc import frontend_key

        key = frontend_key(source, defines) + (device.short_name,)
        entry = device.model.plan_cache_get(key)
        if entry is not None:
            self._bump("plan_hits")
            status, payload = entry
            if status == "err":
                raise payload
            return payload, True
        self._bump("plan_misses")
        try:
            plan = build()
        except ReproError as exc:
            if not isinstance(exc, TransientError):
                device.model.plan_cache_put(key, ("err", exc))
            raise
        device.model.plan_cache_put(key, ("ok", plan))
        return plan, False

    # -- bookkeeping -------------------------------------------------------------

    def _bump(self, counter: str) -> None:
        with self._lock:
            self._counters[counter] += 1
        obs_metrics.count(f"build_cache.{counter}")

    def stats(self) -> dict[str, int]:
        """Hit/miss counters plus the number of distinct front-end keys."""
        with self._lock:
            return {**self._counters, "frontend_entries": len(self._checked)}


class Program:
    """An OpenCL program: source plus per-device build artifacts."""

    def __init__(self, context: Context, source: str):
        self.context = context
        self.source = source
        self.checked: "CheckedProgram | None" = None
        self._plans: dict[str, "ExecutionPlan"] = {}
        self._build_logs: dict[str, str] = {}
        self._defines: dict[str, str] = {}

    def build(
        self,
        defines: Mapping[str, str | int] | None = None,
        devices: "tuple[Device, ...] | None" = None,
        options: "BuildOptions | None" = None,
        cache: "BuildCache | None" = None,
    ) -> "Program":
        """Compile for the given (default: all context) devices.

        Raises :class:`~repro.errors.BuildError` with the offending
        device's build log on failure, like ``clBuildProgram``. With a
        :class:`BuildCache`, front-end and per-device artifacts are
        reused across programs with identical content.
        """
        from ..devices.base import BuildOptions as _BuildOptions

        if devices is None:
            devices = self.context.devices
        self._defines = {k: str(v) for k, v in (defines or {}).items()}
        if options is None:
            options = _BuildOptions(defines=self._defines)
        else:
            options = options.with_defines(self._defines)

        self.checked = self._frontend(cache)

        for device in devices:
            checked, opts = self.checked, options
            try:
                if cache is not None:
                    plan, _ = cache.plan(
                        self.source,
                        self._defines,
                        device,
                        lambda: self._device_build(device, checked, opts),
                    )
                else:
                    plan = self._device_build(device, checked, opts)
            except BuildError as exc:
                self._build_logs[device.short_name] = exc.log
                raise
            self._plans[device.short_name] = plan
            self._build_logs[device.short_name] = plan.build_log
        return self

    def _frontend(self, cache: "BuildCache | None") -> "CheckedProgram":
        from ..oclc import compile_source

        try:
            if cache is not None:
                checked, _ = cache.frontend(self.source, self._defines)
                return checked
            return compile_source(self.source, self._defines)
        except OclcError as exc:
            raise BuildError(
                f"front-end error: {exc}", device="<front-end>", log=str(exc)
            ) from exc

    def _device_build(
        self, device: "Device", checked: "CheckedProgram", options: "BuildOptions"
    ) -> "ExecutionPlan":
        try:
            return device.model.build(checked, options)
        except BuildError:
            raise
        except ReproError as exc:
            raise BuildError(
                f"build failed for {device.short_name}",
                device=device.short_name,
                log=str(exc),
            ) from exc

    @classmethod
    def from_artifacts(
        cls,
        context: Context,
        source: str,
        *,
        checked: "CheckedProgram",
        plans: "Mapping[str, ExecutionPlan]",
        defines: Mapping[str, str | int] | None = None,
    ) -> "Program":
        """Assemble an already-built Program from cached artifacts.

        The execution engine's path around :meth:`build`: stage results
        (front-end + per-device plans) come from a :class:`BuildCache`,
        and the Program is only the launchable wrapper the kernel and
        queue layers expect. ``plans`` maps device short names to plans.
        """
        program = cls(context, source)
        program.checked = checked
        program._defines = {k: str(v) for k, v in (defines or {}).items()}
        program._plans = dict(plans)
        program._build_logs = {
            name: plan.build_log for name, plan in plans.items()
        }
        return program

    # -- queries -----------------------------------------------------------------

    def build_log(self, device: "Device") -> str:
        """The device's build log (clGetProgramBuildInfo analogue)."""
        return self._build_logs.get(device.short_name, "")

    def plan_for(self, device: "Device") -> "ExecutionPlan":
        try:
            return self._plans[device.short_name]
        except KeyError:
            raise InvalidValueError(
                f"program was not built for device {device.short_name!r}"
            ) from None

    @property
    def defines(self) -> dict[str, str]:
        return dict(self._defines)

    def create_kernel(self, name: str) -> "Kernel":
        """Instantiate a kernel object for ``name``."""
        from .kernel import Kernel

        if self.checked is None:
            raise InvalidValueError("program must be built before creating kernels")
        return Kernel(self, name)

    def kernel_names(self) -> tuple[str, ...]:
        if self.checked is None:
            raise InvalidValueError("program must be built first")
        return tuple(f.name for f in self.checked.unit.functions if f.is_kernel)
