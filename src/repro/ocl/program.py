"""Programs: source -> per-device builds.

``Program`` mirrors ``clCreateProgramWithSource`` + ``clBuildProgram``:
the OpenCL-C front-end checks the source once (with the build's ``-D``
defines), then each device's performance model derives its
:class:`~repro.devices.base.ExecutionPlan` — the analogue of the vendor
offline compile, including FPGA resource estimation, which can fail the
build just like a real place-and-route overflow would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from ..errors import BuildError, InvalidValueError, OclcError, ReproError
from .context import Context

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.base import BuildOptions, ExecutionPlan
    from ..oclc import CheckedProgram
    from .kernel import Kernel
    from .platform import Device

__all__ = ["Program"]


class Program:
    """An OpenCL program: source plus per-device build artifacts."""

    def __init__(self, context: Context, source: str):
        self.context = context
        self.source = source
        self.checked: "CheckedProgram | None" = None
        self._plans: dict[str, "ExecutionPlan"] = {}
        self._build_logs: dict[str, str] = {}
        self._defines: dict[str, str] = {}

    def build(
        self,
        defines: Mapping[str, str | int] | None = None,
        devices: "tuple[Device, ...] | None" = None,
        options: "BuildOptions | None" = None,
    ) -> "Program":
        """Compile for the given (default: all context) devices.

        Raises :class:`~repro.errors.BuildError` with the offending
        device's build log on failure, like ``clBuildProgram``.
        """
        from ..devices.base import BuildOptions as _BuildOptions
        from ..oclc import compile_source

        if devices is None:
            devices = self.context.devices
        self._defines = {k: str(v) for k, v in (defines or {}).items()}
        if options is None:
            options = _BuildOptions(defines=self._defines)
        else:
            options = options.with_defines(self._defines)

        try:
            self.checked = compile_source(self.source, self._defines)
        except OclcError as exc:
            raise BuildError(
                f"front-end error: {exc}", device="<front-end>", log=str(exc)
            ) from exc

        for device in devices:
            try:
                plan = device.model.build(self.checked, options)
            except ReproError as exc:
                self._build_logs[device.short_name] = str(exc)
                raise BuildError(
                    f"build failed for {device.short_name}",
                    device=device.short_name,
                    log=str(exc),
                ) from exc
            self._plans[device.short_name] = plan
            self._build_logs[device.short_name] = plan.build_log
        return self

    # -- queries -----------------------------------------------------------------

    def build_log(self, device: "Device") -> str:
        """The device's build log (clGetProgramBuildInfo analogue)."""
        return self._build_logs.get(device.short_name, "")

    def plan_for(self, device: "Device") -> "ExecutionPlan":
        try:
            return self._plans[device.short_name]
        except KeyError:
            raise InvalidValueError(
                f"program was not built for device {device.short_name!r}"
            ) from None

    @property
    def defines(self) -> dict[str, str]:
        return dict(self._defines)

    def create_kernel(self, name: str) -> "Kernel":
        """Instantiate a kernel object for ``name``."""
        from .kernel import Kernel

        if self.checked is None:
            raise InvalidValueError("program must be built before creating kernels")
        return Kernel(self, name)

    def kernel_names(self) -> tuple[str, ...]:
        if self.checked is None:
            raise InvalidValueError("program must be built first")
        return tuple(f.name for f in self.checked.unit.functions if f.is_kernel)
