"""Platforms and devices.

A :class:`Device` pairs an identity (name, vendor, type) with a
**performance model** from :mod:`repro.devices` that provides build,
timing and transfer estimates. :func:`get_platforms` assembles the four
paper targets, one platform per vendor toolchain — mirroring how the
real machines would enumerate under an OpenCL ICD loader:

* ``Intel(R) OpenCL`` — Xeon E5-2609 v2 CPU
* ``NVIDIA CUDA`` — GeForce GTX Titan Black GPU
* ``Altera SDK for OpenCL`` — Stratix V GS D5 (Nallatech PCIe-385)
* ``Xilinx SDAccel`` — Virtex-7 XC7 (Alpha-Data ADM-PCIE-7V3)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from ..errors import InvalidValueError

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.base import DeviceModel

__all__ = ["Device", "Platform", "get_platforms", "find_device"]


class Device:
    """One compute device, wrapping its performance model."""

    def __init__(self, model: "DeviceModel"):
        self.model = model

    @property
    def name(self) -> str:
        return self.model.spec.name

    @property
    def vendor(self) -> str:
        return self.model.spec.vendor

    @property
    def device_type(self) -> str:
        """"cpu", "gpu" or "accelerator" (FPGAs enumerate as accelerators)."""
        return self.model.spec.device_type

    @property
    def short_name(self) -> str:
        """The paper's short target tag: aocl / sdaccel / cpu / gpu."""
        return self.model.spec.short_name

    @property
    def global_mem_size(self) -> int:
        return self.model.spec.global_mem_bytes

    @property
    def max_compute_units(self) -> int:
        return self.model.spec.compute_units

    def info(self) -> dict[str, object]:
        """CL_DEVICE_*-style attribute dump."""
        spec = self.model.spec
        return {
            "name": spec.name,
            "vendor": spec.vendor,
            "type": spec.device_type,
            "short_name": spec.short_name,
            "max_compute_units": spec.compute_units,
            "max_clock_frequency_mhz": spec.core_clock_hz / 1e6,
            "global_mem_size": spec.global_mem_bytes,
            "peak_global_bandwidth_gbs": spec.peak_bandwidth_gbs,
            "max_work_group_size": spec.max_work_group_size,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<Device {self.short_name}: {self.name}>"


class Platform:
    """A vendor platform exposing one or more devices."""

    def __init__(self, name: str, vendor: str, devices: Iterable[Device]):
        self.name = name
        self.vendor = vendor
        self.devices = tuple(devices)

    def get_devices(self, device_type: str | None = None) -> tuple[Device, ...]:
        if device_type is None:
            return self.devices
        return tuple(d for d in self.devices if d.device_type == device_type)

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<Platform {self.name!r} ({len(self.devices)} device(s))>"


def get_platforms(include_future: bool = False) -> tuple[Platform, ...]:
    """Enumerate the simulated platforms (the paper's four targets).

    ``include_future=True`` adds the hypothetical targets from the
    paper's outlook (HMC-backed FPGA, matured toolchain); see
    :mod:`repro.devices.future`.
    """
    from ..devices import paper_device_models

    rows = list(paper_device_models())
    if include_future:
        from ..devices.future import future_device_models

        rows.extend(future_device_models())
    return tuple(
        Platform(name, vendor, [Device(m) for m in models])
        for name, vendor, models in rows
    )


def find_device(short_name: str) -> Device:
    """Look a device up by its target tag.

    The paper's tags (aocl/sdaccel/cpu/gpu) come from the default
    registry; the hypothetical future targets (aocl-hmc,
    sdaccel-mature) resolve too.
    """
    for platform in get_platforms(include_future=True):
        for device in platform.devices:
            if device.short_name == short_name:
                return device
    known = [
        d.short_name for p in get_platforms(include_future=True) for d in p.devices
    ]
    raise InvalidValueError(
        f"no device {short_name!r}; available: {sorted(known)}"
    )
