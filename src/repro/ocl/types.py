"""Scalar and vector type system for the OpenCL-C subset.

OpenCL C defines scalar types (``char`` ... ``double``) and vector types
(``int4``, ``double2``, ...) with 2/3/4/8/16 lanes. MP-STREAM's tuning
space uses the vector width as its memory-coalescing knob, so the type
system is load-bearing: the width of the pointee type of a kernel
argument determines the memory transaction size the device models see.

Types are interned: :func:`scalar` and :func:`vector` return shared
instances, so identity comparison works and types can be dict keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Final

import numpy as np

from ..errors import InvalidValueError

__all__ = [
    "ScalarKind",
    "Type",
    "ScalarType",
    "VectorType",
    "PointerType",
    "VoidType",
    "scalar",
    "vector",
    "pointer",
    "VOID",
    "CHAR",
    "UCHAR",
    "SHORT",
    "USHORT",
    "INT",
    "UINT",
    "LONG",
    "ULONG",
    "FLOAT",
    "DOUBLE",
    "BOOL",
    "SIZE_T",
    "VECTOR_WIDTHS",
    "parse_type_name",
    "ADDRESS_SPACES",
]

#: Lane counts OpenCL C allows for vector types.
VECTOR_WIDTHS: Final[tuple[int, ...]] = (2, 3, 4, 8, 16)

#: Address-space qualifiers of OpenCL C.
ADDRESS_SPACES: Final[tuple[str, ...]] = ("__global", "__local", "__constant", "__private")

_SCALAR_SPECS: Final[dict[str, tuple[str, int, bool, bool]]] = {
    # name: (numpy dtype, size bytes, is_float, is_signed)
    "char": ("int8", 1, False, True),
    "uchar": ("uint8", 1, False, False),
    "short": ("int16", 2, False, True),
    "ushort": ("uint16", 2, False, False),
    "int": ("int32", 4, False, True),
    "uint": ("uint32", 4, False, False),
    "long": ("int64", 8, False, True),
    "ulong": ("uint64", 8, False, False),
    "float": ("float32", 4, True, True),
    "double": ("float64", 8, True, True),
    "bool": ("bool", 1, False, False),
    "size_t": ("uint64", 8, False, False),
}


class Type:
    """Base class for all types. Instances are immutable and interned."""

    #: total size in bytes of one value of this type
    size: int

    def is_numeric(self) -> bool:
        return False

    def is_float(self) -> bool:
        return False

    def is_integer(self) -> bool:
        return False


@dataclass(frozen=True)
class VoidType(Type):
    """The ``void`` type (kernel return type only)."""

    size: int = 0

    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class ScalarKind:
    """Shared description of a scalar base type (also used by vectors)."""

    name: str
    dtype_name: str
    size: int
    floating: bool
    signed: bool

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.dtype_name)


@dataclass(frozen=True)
class ScalarType(Type):
    """An OpenCL scalar type such as ``int`` or ``double``."""

    kind: ScalarKind

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.kind.size

    @property
    def name(self) -> str:
        return self.kind.name

    @property
    def dtype(self) -> np.dtype:
        return self.kind.dtype

    def is_numeric(self) -> bool:
        return self.kind.name != "bool"

    def is_float(self) -> bool:
        return self.kind.floating

    def is_integer(self) -> bool:
        return not self.kind.floating and self.kind.name != "bool"

    def __str__(self) -> str:
        return self.kind.name


@dataclass(frozen=True)
class VectorType(Type):
    """An OpenCL vector type such as ``int4`` (``width`` lanes of ``kind``)."""

    kind: ScalarKind
    width: int

    @property
    def size(self) -> int:  # type: ignore[override]
        return self.kind.size * self.width

    @property
    def name(self) -> str:
        return f"{self.kind.name}{self.width}"

    @property
    def element(self) -> "ScalarType":
        return scalar(self.kind.name)

    @property
    def dtype(self) -> np.dtype:
        return self.kind.dtype

    def is_numeric(self) -> bool:
        return True

    def is_float(self) -> bool:
        return self.kind.floating

    def is_integer(self) -> bool:
        return not self.kind.floating

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class PointerType(Type):
    """A pointer into an OpenCL address space.

    ``size`` is the pointer's own size (8 bytes); the pointee's layout is
    what the device memory models care about.
    """

    pointee: Type
    address_space: str = "__global"
    size: int = 8

    def __post_init__(self) -> None:
        if self.address_space not in ADDRESS_SPACES:
            raise InvalidValueError(
                f"unknown address space {self.address_space!r}"
            )

    def __str__(self) -> str:
        return f"{self.address_space} {self.pointee}*"


_SCALAR_CACHE: dict[str, ScalarType] = {}
_VECTOR_CACHE: dict[tuple[str, int], VectorType] = {}

VOID = VoidType()


def scalar(name: str) -> ScalarType:
    """Return the interned scalar type for ``name`` ("int", "double", ...)."""
    try:
        return _SCALAR_CACHE[name]
    except KeyError:
        pass
    if name not in _SCALAR_SPECS:
        raise InvalidValueError(f"unknown scalar type {name!r}")
    dtype_name, size, floating, signed = _SCALAR_SPECS[name]
    ty = ScalarType(ScalarKind(name, dtype_name, size, floating, signed))
    _SCALAR_CACHE[name] = ty
    return ty


def vector(base: str | ScalarType, width: int) -> VectorType:
    """Return the interned vector type ``<base><width>`` (e.g. int4).

    ``width == 1`` is not a vector in OpenCL; callers wanting a
    width-parametric type should use :func:`widen` instead.
    """
    base_name = base.name if isinstance(base, ScalarType) else base
    key = (base_name, width)
    try:
        return _VECTOR_CACHE[key]
    except KeyError:
        pass
    if width not in VECTOR_WIDTHS:
        raise InvalidValueError(
            f"invalid vector width {width}; OpenCL allows {VECTOR_WIDTHS}"
        )
    ty = VectorType(scalar(base_name).kind, width)
    _VECTOR_CACHE[key] = ty
    return ty


def widen(base: str | ScalarType, width: int) -> ScalarType | VectorType:
    """Scalar for width 1, vector otherwise — the MP-STREAM "vec width" knob."""
    if width == 1:
        return base if isinstance(base, ScalarType) else scalar(base)
    return vector(base, width)


def pointer(pointee: Type, address_space: str = "__global") -> PointerType:
    """Build a pointer type (not interned; cheap and rarely compared)."""
    return PointerType(pointee, address_space)


CHAR = scalar("char")
UCHAR = scalar("uchar")
SHORT = scalar("short")
USHORT = scalar("ushort")
INT = scalar("int")
UINT = scalar("uint")
LONG = scalar("long")
ULONG = scalar("ulong")
FLOAT = scalar("float")
DOUBLE = scalar("double")
BOOL = scalar("bool")
SIZE_T = scalar("size_t")

_TYPE_NAME_RE_CACHE: dict[str, Type] = {}


def parse_type_name(name: str) -> Type:
    """Parse a type name like ``"int"``, ``"double16"`` or ``"void"``.

    >>> parse_type_name("int4").size
    16
    """
    if name in _TYPE_NAME_RE_CACHE:
        return _TYPE_NAME_RE_CACHE[name]
    if name == "void":
        return VOID
    ty: Type
    if name in _SCALAR_SPECS:
        ty = scalar(name)
    else:
        # try trailing integer suffix -> vector
        base = name.rstrip("0123456789")
        suffix = name[len(base):]
        if not suffix or base not in _SCALAR_SPECS:
            raise InvalidValueError(f"unknown type name {name!r}")
        ty = vector(base, int(suffix))
    _TYPE_NAME_RE_CACHE[name] = ty
    return ty


def common_numeric_type(a: Type, b: Type) -> Type:
    """Usual-arithmetic-conversions result type for a binary operation.

    Vector op scalar broadcasts to the vector type; mixed widths are an
    error (as in OpenCL C). Mixed int/float promotes to float; the wider
    scalar wins otherwise.
    """
    if isinstance(a, VectorType) and isinstance(b, VectorType):
        if a.width != b.width:
            raise InvalidValueError(
                f"vector width mismatch: {a} vs {b}"
            )
        kind = _promote_kind(a.kind, b.kind)
        return vector(kind.name, a.width)
    if isinstance(a, VectorType):
        if not isinstance(b, ScalarType):
            raise InvalidValueError(f"cannot combine {a} with {b}")
        kind = _promote_kind(a.kind, b.kind)
        return vector(kind.name, a.width)
    if isinstance(b, VectorType):
        return common_numeric_type(b, a)
    if isinstance(a, ScalarType) and isinstance(b, ScalarType):
        return scalar(_promote_kind(a.kind, b.kind).name)
    raise InvalidValueError(f"cannot combine {a} with {b}")


def _promote_kind(a: ScalarKind, b: ScalarKind) -> ScalarKind:
    if a.floating and not b.floating:
        return a
    if b.floating and not a.floating:
        return b
    if a.floating and b.floating:
        return a if a.size >= b.size else b
    # both integer: wider wins; same width, unsigned wins (C rules, simplified)
    if a.size != b.size:
        return a if a.size > b.size else b
    if a.signed == b.signed:
        return a
    return a if not a.signed else b
