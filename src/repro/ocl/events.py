"""Events with OpenCL-style profiling timestamps.

Real OpenCL events expose QUEUED/SUBMIT/START/END counters via
``clGetEventProfilingInfo``; MP-STREAM derives all of its bandwidth
numbers from START→END. Our events carry the same four timestamps in
*virtual device time* (seconds since queue creation), filled in by the
command queue from the device performance model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import InvalidOperationError

__all__ = ["CommandType", "Event"]


class CommandType(enum.Enum):
    """What kind of command an event tracks (CL_COMMAND_* analogue)."""

    ND_RANGE_KERNEL = "ndrange_kernel"
    READ_BUFFER = "read_buffer"
    WRITE_BUFFER = "write_buffer"
    COPY_BUFFER = "copy_buffer"
    MIGRATE_MEM_OBJECTS = "migrate_mem_objects"
    MARKER = "marker"


@dataclass
class Event:
    """A completed or pending command with profiling info.

    All four timestamps are in seconds of virtual device time. The
    ``detail`` mapping carries model-specific statistics (transaction
    counts, stall cycles, achieved burst sizes...) for introspection.
    """

    command: CommandType
    queued: float = 0.0
    submit: float = 0.0
    start: float = 0.0
    end: float = 0.0
    complete: bool = False
    detail: dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """START→END time in seconds (what STREAM measures)."""
        if not self.complete:
            raise InvalidOperationError(
                "profiling info is not available before the event completes"
            )
        return self.end - self.start

    @property
    def latency(self) -> float:
        """QUEUED→END time, including submission/launch overhead."""
        if not self.complete:
            raise InvalidOperationError(
                "profiling info is not available before the event completes"
            )
        return self.end - self.queued

    def profile(self) -> dict[str, float]:
        """All four counters, like querying each CL_PROFILING_COMMAND_*."""
        if not self.complete:
            raise InvalidOperationError(
                "profiling info is not available before the event completes"
            )
        return {
            "queued": self.queued,
            "submit": self.submit,
            "start": self.start,
            "end": self.end,
        }
