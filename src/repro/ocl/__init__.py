"""An OpenCL-like host runtime built from scratch.

Mirrors the object model of the Khronos OpenCL 1.2 host API closely
enough that the MP-STREAM host code reads like real OpenCL host code:

    Platform -> Device -> Context -> CommandQueue
    Program(source) -> build(device) -> Kernel -> enqueue_nd_range
    Buffer, enqueue_read/write, Event profiling timestamps

Devices execute *functionally* through the OpenCL-C interpreter or the
vectorized specializer, while their *timing* comes from the attached
performance model (:mod:`repro.devices`). Event profiling info reports
the model's virtual time, which is what the benchmark measures.
"""

from __future__ import annotations

from .buffer import Buffer, MemFlags
from .context import Context
from .events import CommandType, Event
from .platform import Device, Platform, get_platforms
from .program import Program
from .kernel import Kernel
from .queue import CommandQueue

__all__ = [
    "Platform",
    "Device",
    "get_platforms",
    "Context",
    "CommandQueue",
    "Buffer",
    "MemFlags",
    "Program",
    "Kernel",
    "Event",
    "CommandType",
]
