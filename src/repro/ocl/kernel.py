"""Kernel objects: argument binding and launch validation."""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import InvalidValueError, LaunchError
from .buffer import Buffer

if TYPE_CHECKING:  # pragma: no cover
    from .program import Program

__all__ = ["Kernel"]


class Kernel:
    """One kernel of a built program, with bound arguments.

    Arguments can be set positionally (``set_arg(0, buf)``) or by name
    (``set_args(a=buf_a, c=buf_c)``); both styles validate against the
    kernel's checked signature.
    """

    def __init__(self, program: "Program", name: str):
        assert program.checked is not None
        self.program = program
        self.name = name
        func = program.checked.kernel(name)  # raises KeyError for unknown names
        self.func = func
        self.param_types = program.checked.param_types[name]
        self.param_names = tuple(p.name for p in func.params)
        self._args: dict[str, object] = {}

    # -- argument binding ---------------------------------------------------------

    def set_arg(self, index: int, value: object) -> None:
        """Bind by position (clSetKernelArg analogue)."""
        if not 0 <= index < len(self.param_names):
            raise InvalidValueError(
                f"kernel {self.name!r} has {len(self.param_names)} arguments; "
                f"index {index} is out of range"
            )
        self._bind(self.param_names[index], value)

    def set_args(self, *positional: object, **named: object) -> "Kernel":
        """Bind several arguments at once; returns self for chaining."""
        if positional and len(positional) > len(self.param_names):
            raise InvalidValueError(
                f"too many positional arguments for kernel {self.name!r}"
            )
        for i, value in enumerate(positional):
            self._bind(self.param_names[i], value)
        for name, value in named.items():
            if name not in self.param_types:
                raise InvalidValueError(
                    f"kernel {self.name!r} has no parameter {name!r}"
                )
            self._bind(name, value)
        return self

    def _bind(self, name: str, value: object) -> None:
        from .types import PointerType

        ty = self.param_types[name]
        if isinstance(ty, PointerType):
            if not isinstance(value, Buffer):
                raise InvalidValueError(
                    f"parameter {name!r} is a buffer; got {type(value).__name__}"
                )
            value._check_alive()
            elem = ty.pointee
            if value.size % elem.size:
                raise InvalidValueError(
                    f"buffer of {value.size} bytes bound to {name!r} is not a "
                    f"whole number of {elem} elements ({elem.size} bytes)"
                )
        else:
            if isinstance(value, Buffer):
                raise InvalidValueError(f"parameter {name!r} is scalar; got a buffer")
            if not np.isscalar(value) and not isinstance(value, (int, float, np.generic)):
                raise InvalidValueError(
                    f"parameter {name!r}: cannot pass {type(value).__name__} by value"
                )
        self._args[name] = value

    # -- launch support --------------------------------------------------------------

    def bound_args(self) -> dict[str, object]:
        missing = [n for n in self.param_names if n not in self._args]
        if missing:
            raise LaunchError(
                f"kernel {self.name!r} launched with unbound arguments: {missing}"
            )
        return dict(self._args)

    def buffer_args(self) -> dict[str, Buffer]:
        return {
            n: v for n, v in self._args.items() if isinstance(v, Buffer)
        }

    def validate_launch(
        self,
        device: object,
        global_size: tuple[int, ...],
        local_size: tuple[int, ...] | None,
    ) -> None:
        if not 1 <= len(global_size) <= 3:
            raise LaunchError(f"NDRange must be 1-3D, got {global_size}")
        if any(int(g) <= 0 for g in global_size):
            raise LaunchError(f"NDRange sizes must be positive: {global_size}")
        reqd = next(
            (a for a in self.func.attributes if a.name == "reqd_work_group_size"),
            None,
        )
        if local_size is not None:
            if len(local_size) != len(global_size):
                raise LaunchError("local_size dimensionality must match global_size")
            for g, l in zip(global_size, local_size):
                if l <= 0 or g % l:
                    raise LaunchError(
                        f"local size {local_size} does not divide {global_size}"
                    )
            if reqd is not None:
                want = tuple(reqd.args)[: len(local_size)]
                if tuple(local_size) != want:
                    raise LaunchError(
                        f"kernel requires work-group size {want}, got {local_size}"
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetics
        return f"<Kernel {self.name}({', '.join(self.param_names)})>"
