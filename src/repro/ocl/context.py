"""Contexts: own buffers and tie devices together."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..errors import InvalidValueError
from .buffer import Buffer, MemFlags

if TYPE_CHECKING:  # pragma: no cover
    from .platform import Device

__all__ = ["Context"]


class Context:
    """An OpenCL-style context over one or more devices."""

    def __init__(self, devices: "Device | Sequence[Device]"):
        from .platform import Device as _Device

        if isinstance(devices, _Device):
            devices = [devices]
        devices = tuple(devices)
        if not devices:
            raise InvalidValueError("a context needs at least one device")
        self.devices = devices
        self._buffers: list[Buffer] = []

    def create_buffer(
        self,
        *,
        size: int | None = None,
        flags: MemFlags = MemFlags.READ_WRITE,
        hostbuf: np.ndarray | None = None,
    ) -> Buffer:
        """Allocate a buffer (clCreateBuffer analogue)."""
        total_mem = min(d.global_mem_size for d in self.devices)
        nbytes = size if size is not None else int(np.asarray(hostbuf).nbytes)
        if nbytes > total_mem:
            raise InvalidValueError(
                f"buffer of {nbytes} bytes exceeds device global memory "
                f"({total_mem} bytes)"
            )
        return Buffer(self, size=size, flags=flags, hostbuf=hostbuf)

    def _register_buffer(self, buffer: Buffer) -> None:
        self._buffers.append(buffer)

    @property
    def buffers(self) -> tuple[Buffer, ...]:
        return tuple(b for b in self._buffers if not b.released)

    def release_all(self) -> None:
        """Release every buffer created in this context."""
        for b in self._buffers:
            if not b.released:
                b.release()

    def prune_released(self) -> None:
        """Forget released buffers so a long-lived context (one sweep
        campaign reuses a single context across thousands of points)
        does not accumulate dead allocations."""
        self._buffers = [b for b in self._buffers if not b.released]

    def __enter__(self) -> "Context":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release_all()
