"""Paper-figure reproduction: one entry point per evaluation artifact.

Each function runs the exact workload the corresponding figure of the
paper plots and returns ``{series_name: [(x, bandwidth_gbs), ...]}``
(or a row list for the table), so benches, tests, the CLI and
EXPERIMENTS.md all share one source of truth.

Sizes are parameters so the test suite can exercise the full pipeline
with small arrays while the benchmark harness runs the paper's range.
"""

from __future__ import annotations

from typing import Sequence

from .core import (
    AccessPattern,
    BenchmarkRunner,
    BuildCache,
    DataType,
    KernelName,
    LoopManagement,
    StreamLocus,
    TuningParameters,
    optimal_loop_for,
)
from .ocl.platform import Device, find_device, get_platforms
from .units import MIB

__all__ = [
    "PAPER_TARGET_ORDER",
    "DEFAULT_SIZES",
    "FIG1_WIDTHS",
    "fig1a_array_size",
    "fig1b_vector_width",
    "fig2_contiguity",
    "fig3_loop_management",
    "fig4a_all_kernels",
    "fig4b_aocl_optimizations",
    "targets_table",
    "pcie_streams",
    "ablation_unroll",
    "ablation_dtype",
    "ablation_preshaping",
]

#: the paper's presentation order of targets
PAPER_TARGET_ORDER = ("aocl", "sdaccel", "cpu", "gpu")

#: fig 1a/2 array sizes (bytes per array): 1 KiB ... 64 MiB
DEFAULT_SIZES = tuple(1024 * 4**i for i in range(9))

FIG1_WIDTHS = (1, 2, 4, 8, 16)

Series = dict[str, list[tuple[float, float]]]


#: per-target devices and build caches shared by every figure: fig1a's
#: runner and fig2's reuse each other's front-end and plan artifacts
#: (plans live on the device model's cache hook, so the device instance
#: must be shared too), so generating a full figure set compiles each
#: distinct kernel once
_DEVICES: dict[str, Device] = {}
_BUILD_CACHES: dict[str, BuildCache] = {}


def _runner(target: str, ntimes: int) -> BenchmarkRunner:
    device = _DEVICES.setdefault(target, find_device(target))
    cache = _BUILD_CACHES.setdefault(target, BuildCache())
    return BenchmarkRunner(device, ntimes=ntimes, cache=cache)


def _optimal_params(target: str, **overrides: object) -> TuningParameters:
    return TuningParameters(loop=optimal_loop_for(target)).with_(**overrides)


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------


def fig1a_array_size(
    sizes: Sequence[int] = DEFAULT_SIZES,
    targets: Sequence[str] = PAPER_TARGET_ORDER,
    *,
    ntimes: int = 3,
) -> Series:
    """Fig 1a: COPY bandwidth vs array size, optimal loop mode per target."""
    series: Series = {}
    for target in targets:
        runner = _runner(target, ntimes)
        points = []
        for size in sizes:
            result = runner.run(_optimal_params(target, array_bytes=size))
            if result.ok:
                points.append((size / MIB, result.bandwidth_gbs))
        series[target] = points
    return series


def fig1b_vector_width(
    widths: Sequence[int] = FIG1_WIDTHS,
    targets: Sequence[str] = PAPER_TARGET_ORDER,
    *,
    array_bytes: int = 4 * MIB,
    ntimes: int = 3,
) -> Series:
    """Fig 1b: COPY bandwidth vs vector width at 4 MB."""
    series: Series = {}
    for target in targets:
        runner = _runner(target, ntimes)
        points = []
        for width in widths:
            result = runner.run(
                _optimal_params(target, array_bytes=array_bytes, vector_width=width)
            )
            if result.ok:
                points.append((float(width), result.bandwidth_gbs))
        series[target] = points
    return series


# ---------------------------------------------------------------------------
# Figure 2
# ---------------------------------------------------------------------------


def fig2_contiguity(
    sizes: Sequence[int] = DEFAULT_SIZES,
    targets: Sequence[str] = PAPER_TARGET_ORDER,
    *,
    ntimes: int = 3,
) -> Series:
    """Fig 2: contiguous vs strided (column-major walk) across sizes."""
    series: Series = {}
    for target in targets:
        runner = _runner(target, ntimes)
        for pattern in (AccessPattern.CONTIGUOUS, AccessPattern.STRIDED):
            points = []
            for size in sizes:
                result = runner.run(
                    _optimal_params(target, array_bytes=size, pattern=pattern)
                )
                if result.ok:
                    points.append((size / MIB, result.bandwidth_gbs))
            series[f"{target}-{'contig' if pattern is AccessPattern.CONTIGUOUS else 'strided'}"] = points
    return series


# ---------------------------------------------------------------------------
# Figure 3
# ---------------------------------------------------------------------------


def fig3_loop_management(
    targets: Sequence[str] = PAPER_TARGET_ORDER,
    *,
    array_bytes: int = 4 * MIB,
    ntimes: int = 3,
) -> Series:
    """Fig 3: NDRange vs flat loop vs nested loop, per target.

    Returned y values are in GB/s (the paper's axis is KB/s; scale by
    1e6 to compare)."""
    series: Series = {}
    for mode in (LoopManagement.NDRANGE, LoopManagement.FLAT, LoopManagement.NESTED):
        points = []
        for i, target in enumerate(targets):
            runner = _runner(target, ntimes)
            result = runner.run(
                TuningParameters(array_bytes=array_bytes, loop=mode)
            )
            if result.ok:
                points.append((float(i), result.bandwidth_gbs))
        series[f"kernel-loop-{mode.value}" if mode is not LoopManagement.NDRANGE else "ndrange-kernel"] = points
    return series


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------


def fig4a_all_kernels(
    targets: Sequence[str] = PAPER_TARGET_ORDER,
    *,
    array_bytes: int = 4 * MIB,
    ntimes: int = 3,
) -> Series:
    """Fig 4a: all four STREAM kernels on all targets (optimal loop mode)."""
    series: Series = {k.value: [] for k in KernelName}
    for i, target in enumerate(targets):
        runner = _runner(target, ntimes)
        for kernel in KernelName:
            result = runner.run(
                _optimal_params(target, array_bytes=array_bytes, kernel=kernel)
            )
            if result.ok:
                series[kernel.value].append((float(i), result.bandwidth_gbs))
    return series


def fig4b_aocl_optimizations(
    scales: Sequence[int] = FIG1_WIDTHS,
    *,
    array_bytes: int = 4 * MIB,
    ntimes: int = 3,
    work_group: int = 256,
) -> Series:
    """Fig 4b: AOCL native vectorization vs SIMD work-items vs compute units.

    N is the knob value; failed builds (resource overflow) simply end a
    series early, which is itself a finding the paper discusses.
    """
    runner = _runner("aocl", ntimes)
    series: Series = {"vector-width": [], "simd-work-items": [], "compute-units": []}
    for n in scales:
        r = runner.run(
            TuningParameters(
                array_bytes=array_bytes,
                loop=LoopManagement.FLAT,
                vector_width=n,
            )
        )
        if r.ok:
            series["vector-width"].append((float(n), r.bandwidth_gbs))
        r = runner.run(
            TuningParameters(
                array_bytes=array_bytes,
                loop=LoopManagement.NDRANGE,
                reqd_work_group_size=work_group,
                num_simd_work_items=n,
            )
        )
        if r.ok:
            series["simd-work-items"].append((float(n), r.bandwidth_gbs))
        r = runner.run(
            TuningParameters(
                array_bytes=array_bytes,
                loop=LoopManagement.NDRANGE,
                reqd_work_group_size=work_group,
                num_compute_units=n,
            )
        )
        if r.ok:
            series["compute-units"].append((float(n), r.bandwidth_gbs))
    return series


# ---------------------------------------------------------------------------
# The setup table and the extra experiments
# ---------------------------------------------------------------------------


def targets_table() -> list[dict[str, object]]:
    """§IV's experimental-setup table, from the live device registry."""
    rows = []
    for platform in get_platforms():
        for device in platform.devices:
            info = device.info()
            rows.append(
                {
                    "target": device.short_name,
                    "device": info["name"],
                    "platform": platform.name,
                    "type": info["type"],
                    "peak_bw_gbs": info["peak_global_bandwidth_gbs"],
                    "compute_units": info["max_compute_units"],
                }
            )
    order = {name: i for i, name in enumerate(PAPER_TARGET_ORDER)}
    rows.sort(key=lambda r: order.get(str(r["target"]), 99))
    return rows


def pcie_streams(
    sizes: Sequence[int] = DEFAULT_SIZES,
    targets: Sequence[str] = ("gpu", "aocl", "sdaccel"),
    *,
    ntimes: int = 3,
) -> Series:
    """§III stream locus: host<->device bandwidth vs transfer size."""
    series: Series = {}
    for target in targets:
        runner = _runner(target, ntimes)
        points = []
        for size in sizes:
            result = runner.run(
                TuningParameters(array_bytes=size, locus=StreamLocus.HOST)
            )
            if result.ok:
                points.append((size / MIB, result.bandwidth_gbs))
        series[target] = points
    return series


def ablation_unroll(
    factors: Sequence[int] = (1, 2, 4, 8, 16),
    targets: Sequence[str] = ("aocl", "sdaccel"),
    *,
    array_bytes: int = 4 * MIB,
    ntimes: int = 3,
) -> Series:
    """§III unroll factor (no paper figure): flat loop, unroll sweep."""
    series: Series = {}
    for target in targets:
        runner = _runner(target, ntimes)
        points = []
        for u in factors:
            result = runner.run(
                TuningParameters(
                    array_bytes=array_bytes, loop=LoopManagement.FLAT, unroll=u
                )
            )
            if result.ok:
                points.append((float(u), result.bandwidth_gbs))
        series[target] = points
    return series


def ablation_dtype(
    targets: Sequence[str] = PAPER_TARGET_ORDER,
    *,
    array_bytes: int = 4 * MIB,
    ntimes: int = 3,
) -> Series:
    """§III data type: int vs double for every kernel, per target."""
    series: Series = {}
    for target in targets:
        runner = _runner(target, ntimes)
        for dtype in (DataType.INT, DataType.DOUBLE):
            points = []
            for i, kernel in enumerate(KernelName):
                result = runner.run(
                    _optimal_params(
                        target, array_bytes=array_bytes, kernel=kernel, dtype=dtype
                    )
                )
                if result.ok:
                    points.append((float(i), result.bandwidth_gbs))
            series[f"{target}-{dtype.cname}"] = points
    return series


def ablation_preshaping(
    targets: Sequence[str] = PAPER_TARGET_ORDER,
    *,
    array_bytes: int = 4 * MIB,
    ntimes: int = 3,
) -> dict[str, dict[str, float]]:
    """§IV observation: pre-shaping strided data to contiguous pays off.

    Returns per-target bandwidths for the strided walk, the contiguous
    walk, and the break-even number of strided passes one host-side
    transpose amortizes over (transpose cost modelled as one extra
    read+write of the array at the contiguous rate).
    """
    out: dict[str, dict[str, float]] = {}
    for target in targets:
        runner = _runner(target, ntimes)
        strided = runner.run(
            _optimal_params(
                target, array_bytes=array_bytes, pattern=AccessPattern.STRIDED
            )
        )
        contig = runner.run(_optimal_params(target, array_bytes=array_bytes))
        if not (strided.ok and contig.ok):
            continue
        t_strided = strided.min_time
        t_contig = contig.min_time
        # host-side transpose: read + write the array once at contiguous rate
        t_reshape = 2 * array_bytes / (contig.bandwidth_gbs * 1e9 / 2)
        gain_per_pass = t_strided - t_contig
        breakeven = t_reshape / gain_per_pass if gain_per_pass > 0 else float("inf")
        out[target] = {
            "strided_gbs": strided.bandwidth_gbs,
            "contiguous_gbs": contig.bandwidth_gbs,
            "speedup": t_strided / t_contig,
            "breakeven_passes": breakeven,
        }
    return out
