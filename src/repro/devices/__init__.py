"""Device performance models for the paper's four targets."""

from __future__ import annotations

from .base import (
    AccessProfile,
    BuildOptions,
    DeviceModel,
    ExecutionPlan,
    KernelTiming,
    Launch,
    profile_accesses,
)
from .cpu import CpuModel
from .energy import ENERGY_SPECS, EnergyReport, EnergySpec, energy_report
from .fpga import AoclModel, FpgaModel, SdaccelModel
from .gpu import GpuModel
from .specs import (
    GTX_TITAN_BLACK,
    PAPER_TARGETS,
    STRATIX_V_AOCL,
    VIRTEX7_SDACCEL,
    XEON_E5_2609V2,
    CpuSpec,
    DeviceSpec,
    FpgaSpec,
    GpuSpec,
)

__all__ = [
    "DeviceModel",
    "BuildOptions",
    "Launch",
    "KernelTiming",
    "ExecutionPlan",
    "AccessProfile",
    "profile_accesses",
    "CpuModel",
    "EnergySpec",
    "EnergyReport",
    "ENERGY_SPECS",
    "energy_report",
    "GpuModel",
    "FpgaModel",
    "AoclModel",
    "SdaccelModel",
    "DeviceSpec",
    "CpuSpec",
    "GpuSpec",
    "FpgaSpec",
    "XEON_E5_2609V2",
    "GTX_TITAN_BLACK",
    "STRATIX_V_AOCL",
    "VIRTEX7_SDACCEL",
    "PAPER_TARGETS",
    "paper_device_models",
    "model_for_spec",
]


def model_for_spec(spec: DeviceSpec) -> DeviceModel:
    """Instantiate the right model class for a spec."""
    if isinstance(spec, CpuSpec):
        return CpuModel(spec)
    if isinstance(spec, GpuSpec):
        return GpuModel(spec)
    if isinstance(spec, FpgaSpec):
        if spec.vendor.lower().startswith("altera") or spec.vendor.lower().startswith(
            "intel"
        ):
            return AoclModel(spec)
        return SdaccelModel(spec)
    raise TypeError(f"no model for spec type {type(spec).__name__}")


def paper_device_models() -> list[tuple[str, str, list[DeviceModel]]]:
    """The simulated ICD view: (platform name, vendor, device models)."""
    return [
        ("Intel(R) OpenCL", "Intel", [CpuModel(XEON_E5_2609V2)]),
        ("NVIDIA CUDA", "NVIDIA", [GpuModel(GTX_TITAN_BLACK)]),
        ("Altera SDK for OpenCL", "Altera", [AoclModel(STRATIX_V_AOCL)]),
        ("Xilinx SDAccel", "Xilinx", [SdaccelModel(VIRTEX7_SDACCEL)]),
    ]
