"""Energy-efficiency model (the paper's declared future-work axis).

§IV: "What we have not considered in this paper is the energy-efficiency
of the devices, but that is one area where FPGAs can still win in spite
of the higher achievable bandwidths on GPUs."

The model splits board power the standard way:

* **static power** — drawn for the whole kernel duration regardless of
  activity (idle silicon, regulators, fans);
* **dynamic transfer energy** — picojoules per byte moved through the
  memory system (DRAM I/O dominates for STREAM-shaped kernels);
* **dynamic compute energy** — picojoules per ALU lane-op, negligible
  here but kept for completeness.

Constants come from public board TDPs and DDR3/GDDR5 energy-per-bit
literature; like the timing specs, they are fixed once in
:data:`ENERGY_SPECS`. The figure the paper predicts emerges directly:
the GPU wins raw bandwidth, the FPGAs win bytes-per-joule once their
pipelines are vectorized enough to amortize static power.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.results import RunResult
from ..errors import InvalidValueError

__all__ = ["EnergySpec", "EnergyReport", "ENERGY_SPECS", "energy_report"]

_PJ = 1e-12


@dataclass(frozen=True)
class EnergySpec:
    """Power/energy characteristics of one target board."""

    short_name: str
    #: board power with a kernel resident but idle, watts
    static_w: float
    #: energy per byte through the memory system, joules
    transfer_j_per_byte: float
    #: energy per scalar ALU operation, joules
    alu_j_per_op: float

    def __post_init__(self) -> None:
        if self.static_w < 0 or self.transfer_j_per_byte < 0:
            raise InvalidValueError("energy constants must be non-negative")


#: Calibration: board TDP-class static draw plus DRAM-technology
#: transfer energy (DDR3 ~ 60-70 pJ/B at the board level including the
#: controller; GDDR5 ~ 55-75 pJ/B; FPGA fabric adds little for LSUs).
ENERGY_SPECS: dict[str, EnergySpec] = {
    # Xeon package power under a memory-bound load
    "cpu": EnergySpec("cpu", static_w=60.0, transfer_j_per_byte=65 * _PJ,
                      alu_j_per_op=30 * _PJ),
    # Kepler boards draw 150-200 W even on memory-bound kernels
    "gpu": EnergySpec("gpu", static_w=170.0, transfer_j_per_byte=70 * _PJ,
                      alu_j_per_op=15 * _PJ),
    # Stratix V / Virtex-7 PCIe cards: low-teens watts typical draw
    "aocl": EnergySpec("aocl", static_w=12.0, transfer_j_per_byte=60 * _PJ,
                       alu_j_per_op=5 * _PJ),
    "sdaccel": EnergySpec("sdaccel", static_w=10.0, transfer_j_per_byte=62 * _PJ,
                          alu_j_per_op=5 * _PJ),
}


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one benchmark result."""

    target: str
    seconds: float
    moved_bytes: int
    static_j: float
    transfer_j: float
    compute_j: float

    @property
    def total_j(self) -> float:
        return self.static_j + self.transfer_j + self.compute_j

    @property
    def average_power_w(self) -> float:
        return self.total_j / self.seconds if self.seconds > 0 else 0.0

    @property
    def gb_per_joule(self) -> float:
        """The efficiency figure of merit: decimal GB moved per joule."""
        return self.moved_bytes / 1e9 / self.total_j if self.total_j > 0 else 0.0

    @property
    def pj_per_byte(self) -> float:
        return self.total_j / self.moved_bytes / _PJ if self.moved_bytes else 0.0

    def summary(self) -> str:
        return (
            f"[{self.target}] {self.total_j * 1e3:.2f} mJ "
            f"({self.average_power_w:.1f} W avg): "
            f"{self.gb_per_joule:.3f} GB/J, {self.pj_per_byte:.0f} pJ/B"
        )


def energy_report(
    result: RunResult, spec: EnergySpec | None = None, *, alu_ops: int = 0
) -> EnergyReport:
    """Energy accounting for a successful benchmark result.

    ``alu_ops`` is the total scalar operations the kernel performed
    (available from the kernel IR; zero is a fine approximation for
    STREAM kernels).
    """
    if not result.ok:
        raise InvalidValueError(
            f"cannot account energy for a failed result ({result.error})"
        )
    if spec is None:
        try:
            spec = ENERGY_SPECS[result.target]
        except KeyError:
            raise InvalidValueError(
                f"no energy spec for target {result.target!r}; pass one explicitly"
            ) from None
    seconds = result.min_time
    return EnergyReport(
        target=result.target,
        seconds=seconds,
        moved_bytes=result.moved_bytes,
        static_j=spec.static_w * seconds,
        transfer_j=spec.transfer_j_per_byte * result.moved_bytes,
        compute_j=spec.alu_j_per_op * alu_ops,
    )
