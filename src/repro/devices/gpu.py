"""GPU performance model (SIMT with warp coalescing).

Mechanisms:

1. **Warp coalescing** — the 32 lanes of a warp merge into aligned
   128-byte segment transactions. Unit-stride scalar streams are fully
   coalesced; a column-major walk gives one segment per lane, so only
   ``element/segment`` of every fetched byte is useful, collapsing the
   useful bandwidth to the *transaction-rate* limit (Fig 2).
2. **Latency hiding / occupancy** — sustained request bandwidth is
   (warps in flight × bytes in flight per warp) / memory latency.
   Register pressure grows with the vector width, cutting occupancy;
   wide vectors also split into replayed sub-transactions that consume
   issue slots. Together these give Fig 1b's GPU shape: a mild rise to
   width 4, then a fall at 16.
3. **L2 reuse** — strided streams whose column of lines fits the L2
   serve revisits at the L2's higher transaction rate (the mid-size
   strided bump in Fig 2).
4. **TLB** — strided walks beyond the translation reach degrade with
   footprint (the large-size strided tail in Fig 2).
5. **Single work-item kernels** run one thread whose dependent accesses
   are latency-bound — three orders of magnitude below NDRange (Fig 3).
"""

from __future__ import annotations

import math

from ..oclc import KernelIR, LoopMode
from .base import (
    AccessProfile,
    BuildOptions,
    DeviceModel,
    ExecutionPlan,
    KernelTiming,
    Launch,
    profile_accesses,
)
from .specs import GpuSpec

__all__ = ["GpuModel"]

#: widest per-lane load the hardware issues in one transaction, bytes
_MAX_LANE_BYTES = 16
#: in-flight transactions one warp sustains (MSHR-like cap)
_WARP_MSHRS = 4
#: MLP loss when per-lane loads split into replayed sub-transactions
_SPLIT_SEQUENCE_PENALTY = 2.5


class GpuModel(DeviceModel):
    """Model of a discrete SIMT GPU."""

    spec: GpuSpec

    def __init__(self, spec: GpuSpec):
        super().__init__(spec)

    # -- build -------------------------------------------------------------------

    def plan(self, ir: KernelIR, options: BuildOptions) -> ExecutionPlan:
        regs = self._regs_per_thread(ir)
        occ = self._occupancy(ir)
        notes = [
            f"gpu build of kernel {ir.name!r}: loop mode {ir.loop_mode}",
            f"registers/thread {regs}, theoretical occupancy {occ:.2f}",
        ]
        if ir.loop_mode is not LoopMode.NDRANGE:
            notes.append(
                "single work-item kernel: one thread, latency-bound "
                "(use an NDRange on GPU targets)"
            )
        return ExecutionPlan(ir=ir, build_log="\n".join(notes))

    def _regs_per_thread(self, ir: KernelIR) -> int:
        return self.spec.regs_base + self.spec.regs_per_lane * ir.vector_width

    def _occupancy(self, ir: KernelIR) -> float:
        spec = self.spec
        regs = self._regs_per_thread(ir)
        max_threads = spec.max_warps_per_sm * spec.warp_size
        occ = spec.registers_per_sm / (max_threads * regs)
        # Vector loads wider than the 16-byte hardware maximum are split
        # into replayed sub-transactions that must issue back-to-back
        # from one warp; only one split sequence is in flight per warp,
        # which cuts the effective memory-level parallelism sharply.
        lane_bytes = ir.vector_width * self._scalar_bytes(ir)
        replays = max(1, math.ceil(lane_bytes / _MAX_LANE_BYTES))
        occ = min(1.0, occ)
        if replays > 1:
            occ /= _SPLIT_SEQUENCE_PENALTY
        return occ

    @staticmethod
    def _scalar_bytes(ir: KernelIR) -> int:
        if not ir.accesses:
            return 4
        a = ir.accesses[0]
        return a.element_bytes // a.vector_width

    # -- timing -------------------------------------------------------------------

    def kernel_timing(self, plan: ExecutionPlan, launch: Launch) -> KernelTiming:
        ir = plan.ir
        spec = self.spec
        if ir.loop_mode is not LoopMode.NDRANGE and launch.work_items <= spec.warp_size:
            return self._single_thread_timing(plan, launch)

        profiles = profile_accesses(ir, launch, line_bytes=spec.l2.line_bytes)
        sustained = spec.stream_efficiency * spec.dram.peak_bandwidth
        dram_tx_rate = sustained / spec.segment_bytes
        l2_tx_rate = dram_tx_rate * spec.l2_bandwidth_factor

        total_useful = 0
        t_tx = 0.0  # transaction-rate-limited service time
        dram_fetched = 0.0
        for p in profiles:
            total_useful += p.useful_bytes
            seg = self._segments(p)
            dram_fetched += seg["dram_tx"] * spec.segment_bytes
            t_tx += seg["dram_tx"] / dram_tx_rate + seg["l2_tx"] / l2_tx_rate
            t_tx += seg["tlb_s"]

        t_dram_data = dram_fetched / sustained
        t_request = total_useful / self._request_bandwidth(ir)
        execution = max(t_tx, t_dram_data, t_request)
        return KernelTiming(
            launch_overhead_s=spec.launch_overhead_s,
            execution_s=execution,
            detail={
                "useful_bytes": total_useful,
                "dram_fetched_bytes": dram_fetched,
                "t_tx_s": t_tx,
                "t_dram_data_s": t_dram_data,
                "t_request_s": t_request,
                "occupancy": self._occupancy(ir),
            },
        )

    def _request_bandwidth(self, ir: KernelIR) -> float:
        """Latency-hiding limit: bytes in flight / memory latency."""
        spec = self.spec
        occ = self._occupancy(ir)
        lane_bytes = ir.vector_width * self._scalar_bytes(ir)
        warp_bytes = min(
            spec.warp_size * lane_bytes, _WARP_MSHRS * spec.segment_bytes
        )
        warps = spec.sm_count * spec.max_warps_per_sm * occ
        return warps * warp_bytes / spec.mem_latency_s

    def _segments(self, p: AccessProfile) -> dict:
        """Transactions one stream needs, split between DRAM and L2."""
        spec = self.spec
        seg = spec.segment_bytes
        n = p.n_accesses
        if p.pattern == "contiguous":
            # warp covers 32*element consecutive bytes -> minimal segments
            tx = n * p.element_bytes / seg
            return {"dram_tx": tx, "l2_tx": 0.0, "tlb_s": 0.0}

        # strided / irregular: one segment per access
        line = spec.l2.line_bytes
        revisits = max(1, (abs(p.stride_bytes) if p.stride_bytes else line) // p.element_bytes)
        effective_l2 = spec.l2.capacity_bytes * (1.0 - 1.0 / (2 * spec.l2.ways))
        reuse_fits = (
            p.reuse_window_bytes is not None and p.reuse_window_bytes <= effective_l2
        )
        if reuse_fits:
            miss_fraction = 1.0 / min(revisits, line // p.element_bytes)
        else:
            miss_fraction = 1.0
        dram_tx = n * miss_fraction
        l2_tx = n * (1.0 - miss_fraction)

        tlb_s = 0.0
        stride = abs(p.stride_bytes) if p.stride_bytes else line
        if stride >= 4096 and p.footprint_bytes > spec.tlb_reach_bytes:
            # page-walk pressure grows with how far past the reach we are
            levels = math.log2(p.footprint_bytes / spec.tlb_reach_bytes)
            tlb_s = n * spec.tlb_miss_s * min(1.0, levels / 4.0)
        return {"dram_tx": dram_tx, "l2_tx": l2_tx, "tlb_s": tlb_s}

    def _single_thread_timing(self, plan: ExecutionPlan, launch: Launch) -> KernelTiming:
        """A for-loop kernel on one CUDA thread: dependent-latency bound."""
        ir = plan.ir
        spec = self.spec
        iters = ir.iterations_per_work_item() * max(1, launch.work_items)
        # one memory round trip per iteration (loads pipeline poorly from
        # a single thread; stores are fire-and-forget)
        execution = iters * spec.mem_latency_s
        return KernelTiming(
            launch_overhead_s=spec.launch_overhead_s,
            execution_s=execution,
            detail={"iterations": iters, "mode": "single-thread"},
        )

    # -- transfers -----------------------------------------------------------------

    def transfer_time(self, nbytes: int, direction: str) -> float:
        _ = direction
        return self.spec.pcie.transfer_time(nbytes)
