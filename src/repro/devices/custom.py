"""User-defined device specs from plain dictionaries.

The real MP-STREAM invited the community to contribute results from
their own boards; the reproduction's analogue is letting users describe
a target as data (a dict, trivially loadable from JSON/TOML) and get a
working device model back::

    spec = spec_from_dict({
        "kind": "fpga",
        "short_name": "myboard",
        "name": "My Dev Board",
        "vendor": "Altera",
        "peak_bandwidth_gbs": 34.1,
        "base_fmax_mhz": 280,
        "dram": {"channels": 2, "banks_per_channel": 8,
                 "row_bytes": 2048},
    })
    device = device_from_dict({...})       # ocl.Device, ready for a Context

Unknown keys are rejected loudly — a typo in a board file should never
silently fall back to a default.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Mapping

from ..errors import InvalidValueError
from ..memsim.dram import DramSpec
from ..memsim.pcie import PcieLink
from ..units import GB, GIB, MHZ, US
from . import model_for_spec
from .specs import CpuSpec, DeviceSpec, FpgaSpec, GpuSpec

__all__ = ["spec_from_dict", "device_from_dict"]

_KINDS: dict[str, type[DeviceSpec]] = {
    "cpu": CpuSpec,
    "gpu": GpuSpec,
    "fpga": FpgaSpec,
}

_DEVICE_TYPE = {"cpu": "cpu", "gpu": "gpu", "fpga": "accelerator"}


def _build_dram(data: Mapping[str, Any], peak_gbs: float) -> DramSpec:
    allowed = {f.name for f in fields(DramSpec)}
    unknown = set(data) - allowed
    if unknown:
        raise InvalidValueError(f"unknown dram keys {sorted(unknown)}")
    merged: dict[str, Any] = {
        "name": "custom-dram",
        "channels": 2,
        "banks_per_channel": 8,
        "row_bytes": 2048,
        "peak_bandwidth": peak_gbs * GB,
    }
    merged.update(data)
    return DramSpec(**merged)


def _build_pcie(data: Mapping[str, Any]) -> PcieLink:
    allowed = {f.name for f in fields(PcieLink)}
    unknown = set(data) - allowed
    if unknown:
        raise InvalidValueError(f"unknown pcie keys {sorted(unknown)}")
    return PcieLink(**data)


def spec_from_dict(data: Mapping[str, Any]) -> DeviceSpec:
    """Build a :class:`DeviceSpec` subclass from a plain mapping.

    Required keys: ``kind`` ("cpu"/"gpu"/"fpga"), ``short_name``,
    ``name``, ``vendor``, ``peak_bandwidth_gbs``. Everything else has
    sensible defaults; nested ``dram`` and ``pcie`` mappings override
    the memory-system and interconnect models. FPGA specs also accept
    ``base_fmax_mhz`` as a convenience.
    """
    payload = dict(data)
    try:
        kind = payload.pop("kind")
    except KeyError:
        raise InvalidValueError('spec dict needs a "kind" (cpu/gpu/fpga)') from None
    if kind not in _KINDS:
        raise InvalidValueError(f"unknown kind {kind!r}; expected {sorted(_KINDS)}")
    cls = _KINDS[kind]

    for required in ("short_name", "name", "vendor", "peak_bandwidth_gbs"):
        if required not in payload:
            raise InvalidValueError(f"spec dict is missing {required!r}")
    peak = float(payload["peak_bandwidth_gbs"])

    dram = _build_dram(payload.pop("dram", {}), peak)
    pcie = _build_pcie(payload.pop("pcie", {}))

    if kind == "fpga" and "base_fmax_mhz" in payload:
        payload["base_fmax_hz"] = float(payload.pop("base_fmax_mhz")) * MHZ

    defaults: dict[str, Any] = {
        "device_type": _DEVICE_TYPE[kind],
        "core_clock_hz": payload.get(
            "base_fmax_hz", 2.0e9 if kind == "cpu" else 1.0e9
        ),
        "compute_units": 4 if kind == "cpu" else (16 if kind == "gpu" else 1),
        "global_mem_bytes": 8 * GIB,
        "max_work_group_size": 1024,
        "launch_overhead_s": 30 * US,
        "dram": dram,
        "pcie": pcie,
    }
    if kind == "fpga":
        defaults["logic_cells"] = 400_000
        defaults["bram_kbits"] = 40_000
        defaults["dsp_blocks"] = 1500

    merged = {**defaults, **payload}
    allowed = {f.name for f in fields(cls)}
    unknown = set(merged) - allowed
    if unknown:
        raise InvalidValueError(
            f"unknown spec keys for kind {kind!r}: {sorted(unknown)}"
        )
    return cls(**merged)


def device_from_dict(data: Mapping[str, Any]) -> "object":
    """Build a ready-to-use :class:`repro.ocl.platform.Device`."""
    from ..ocl.platform import Device

    return Device(model_for_spec(spec_from_dict(data)))
