"""Shared device-model interfaces.

A :class:`DeviceModel` is the simulated analogue of "vendor driver +
silicon": it *builds* a checked program into an :class:`ExecutionPlan`
(the offline-compile step, where FPGA models also do resource
estimation and can fail like a real place-and-route), and *times*
launches of that plan.

:func:`profile_accesses` is the bridge from the compiler front-end to
the memory models: it reduces each static access site of a kernel to an
:class:`AccessProfile` — how many accesses the launch performs, at what
byte stride, over what footprint, and with what line-reuse window — the
quantities every target's bandwidth mechanism is written in terms of.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Mapping, Optional

import numpy as np

from ..errors import DeviceModelError
from ..oclc import CheckedProgram, KernelIR, LoopMode, analyze
from ..oclc.analysis import MemAccess, index_stream

__all__ = [
    "BuildOptions",
    "Launch",
    "KernelTiming",
    "ExecutionPlan",
    "AccessProfile",
    "DeviceModel",
    "profile_accesses",
    "access_count",
    "domain_size",
]


@dataclass(frozen=True)
class BuildOptions:
    """Per-build knobs (``-D`` defines plus vendor-specific extras)."""

    defines: Mapping[str, str] = field(default_factory=dict)
    extra: Mapping[str, object] = field(default_factory=dict)

    def with_defines(self, defines: Mapping[str, str]) -> "BuildOptions":
        merged = dict(self.defines)
        merged.update(defines)
        return replace(self, defines=merged)


@dataclass(frozen=True)
class Launch:
    """One kernel launch as the performance model sees it."""

    global_size: tuple[int, ...]
    local_size: Optional[tuple[int, ...]] = None
    buffer_bytes: Mapping[str, int] = field(default_factory=dict)

    @property
    def work_items(self) -> int:
        return int(np.prod(self.global_size))


@dataclass(frozen=True)
class KernelTiming:
    """Model output for one launch."""

    launch_overhead_s: float
    execution_s: float
    detail: dict[str, object] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return self.launch_overhead_s + self.execution_s


@dataclass
class ExecutionPlan:
    """A built kernel: IR plus device-specific planning payload."""

    ir: KernelIR
    build_log: str = ""
    payload: Any = None
    #: FPGA models attach a resource report; None elsewhere
    resources: Optional[object] = None


@dataclass(frozen=True)
class AccessProfile:
    """One access site, concretized for a specific launch.

    ``stride_bytes`` is the dominant byte distance between consecutive
    accesses of this stream (None if no dominant stride exists).
    ``reuse_window_bytes`` is how much cache it takes to still hold a
    line when the stream comes back to it (None when each line is
    touched in one contiguous burst, i.e. no far reuse).
    """

    param: str
    is_write: bool
    element_bytes: int
    n_accesses: int
    stride_bytes: Optional[int]
    footprint_bytes: int
    reuse_window_bytes: Optional[int] = None

    @property
    def pattern(self) -> str:
        if self.stride_bytes is None:
            return "irregular"
        if abs(self.stride_bytes) == self.element_bytes:
            return "contiguous"
        return "strided"

    @property
    def useful_bytes(self) -> int:
        return self.n_accesses * self.element_bytes


def domain_size(ir: KernelIR, launch: Launch) -> int:
    """Total innermost iterations the launch executes (all work-items)."""
    per_item = ir.iterations_per_work_item()
    if ir.loop_mode is LoopMode.NDRANGE or ir.gid_vars:
        return launch.work_items * per_item
    return per_item


def access_count(ir: KernelIR, access: MemAccess, launch: Launch) -> int:
    """How many times one access site executes under ``launch``.

    An access at loop depth ``d`` runs once per iteration of its
    *enclosing* loops only — a reduction's epilogue store (depth 0)
    executes once per work-item, not once per inner iteration.
    """
    n = 1
    for loop in ir.loops[: access.depth]:
        n *= loop.trip_count
    if ir.loop_mode is LoopMode.NDRANGE or ir.gid_vars:
        n *= launch.work_items
    return n


def profile_accesses(
    ir: KernelIR, launch: Launch, *, line_bytes: int = 64, sample: int = 8192
) -> list[AccessProfile]:
    """Concretize each access site of ``ir`` for ``launch``."""
    profiles: list[AccessProfile] = []
    for access in ir.accesses:
        n = access_count(ir, access, launch)
        footprint = int(launch.buffer_bytes.get(access.param, 0))
        stride = _dominant_stride(ir, access, launch, sample)
        stride_bytes = None if stride is None else stride * access.element_bytes
        reuse = _reuse_window(stride_bytes, access.element_bytes, footprint, line_bytes)
        profiles.append(
            AccessProfile(
                param=access.param,
                is_write=access.is_write,
                element_bytes=access.element_bytes,
                n_accesses=n,
                stride_bytes=stride_bytes,
                footprint_bytes=footprint,
                reuse_window_bytes=reuse,
            )
        )
    return profiles


def _dominant_stride(
    ir: KernelIR, access: MemAccess, launch: Launch, sample: int
) -> Optional[int]:
    """Element stride between consecutive accesses (mode of the diffs)."""
    if access.affine.is_affine:
        return _affine_inner_stride(ir, access)
    gsize = launch.work_items
    stream = index_stream(ir, access, global_size=gsize, max_elements=sample)
    if stream.size < 2:
        return 0
    diffs = np.diff(stream)
    values, counts = np.unique(diffs, return_counts=True)
    dominant = values[np.argmax(counts)]
    if counts.max() < 0.5 * diffs.size:
        return None
    return int(dominant)


def _affine_inner_stride(ir: KernelIR, access: MemAccess) -> Optional[int]:
    # innermost loop with a nonzero coefficient drives consecutive accesses
    for loop in reversed(ir.loops):
        coeff = access.affine.stride_of(loop.var)
        if coeff:
            # only the innermost *iterating* variable matters; if an inner
            # loop has zero coefficient the access repeats (stride 0)
            if loop is ir.loops[-1]:
                return coeff
            # access is invariant in deeper loops -> repeats each iteration
            inner_have_zero = all(
                access.affine.stride_of(inner.var) == 0
                for inner in ir.loops[ir.loops.index(loop) + 1 :]
            )
            return 0 if inner_have_zero else coeff
    return access.affine.stride_of("gid0") if "gid0" in access.affine.coeffs else 0


def _reuse_window(
    stride_bytes: Optional[int],
    element_bytes: int,
    footprint_bytes: int,
    line_bytes: int,
) -> Optional[int]:
    """Cache needed to catch the comeback of a strided stream's lines.

    A column-major walk (stride S over footprint F) touches F/S distinct
    lines per column and revisits each after a full column; holding a
    column of lines (``F/S * line``) converts the revisits to hits.
    Contiguous streams have no far reuse.
    """
    if stride_bytes is None or footprint_bytes <= 0:
        return None
    s = abs(stride_bytes)
    if s <= element_bytes or s < line_bytes:
        return None
    column_length = max(1, footprint_bytes // s)
    return column_length * line_bytes


class DeviceModel(abc.ABC):
    """Abstract performance model of one target device."""

    #: Whether the model can score a launch analytically without executing
    #: it (the multi-fidelity searcher's low-fidelity tier). Subclasses
    #: whose timing depends on executed state must opt out.
    supports_lowfi: bool = True

    def __init__(self, spec: "object"):
        self.spec = spec
        # Plan-cache hook: campaign caches (repro.ocl.program.BuildCache)
        # store built ExecutionPlans here under content-addressed keys, so
        # every campaign targeting this device shares one plan store.
        self._plan_cache: dict[Hashable, object] = {}
        self._plan_cache_lock = threading.Lock()

    # -- plan cache hook -----------------------------------------------------------

    def plan_cache_get(self, key: Hashable) -> object | None:
        """Look up a cached build outcome (``("ok", plan)``/``("err", exc)``)."""
        with self._plan_cache_lock:
            return self._plan_cache.get(key)

    def plan_cache_put(self, key: Hashable, entry: object) -> None:
        """Store a build outcome under a content-addressed key."""
        with self._plan_cache_lock:
            self._plan_cache[key] = entry

    def plan_cache_size(self) -> int:
        with self._plan_cache_lock:
            return len(self._plan_cache)

    def clear_plan_cache(self) -> None:
        with self._plan_cache_lock:
            self._plan_cache.clear()

    # -- build -------------------------------------------------------------------

    def build(self, checked: CheckedProgram, options: BuildOptions) -> ExecutionPlan:
        """Build the *first* kernel of the program (others via plan_for_kernel)."""
        kernels = [f.name for f in checked.unit.functions if f.is_kernel]
        if not kernels:
            raise DeviceModelError("program contains no kernels")
        return self.build_kernel(checked, kernels[0], options)

    def build_kernel(
        self, checked: CheckedProgram, kernel_name: str, options: BuildOptions
    ) -> ExecutionPlan:
        ir = analyze(checked, kernel_name)
        return self.plan(ir, options)

    def plan_for_kernel(self, plan: ExecutionPlan, kernel_name: str) -> ExecutionPlan:
        """Derive a plan for a sibling kernel in the same program."""
        ir = analyze(plan.ir.program, kernel_name)
        return self.plan(ir, BuildOptions())

    @abc.abstractmethod
    def plan(self, ir: KernelIR, options: BuildOptions) -> ExecutionPlan:
        """Device-specific compile of an analyzed kernel."""

    # -- timing -------------------------------------------------------------------

    @abc.abstractmethod
    def kernel_timing(self, plan: ExecutionPlan, launch: Launch) -> KernelTiming:
        """Time one launch of a built kernel."""

    def score_launch(self, plan: ExecutionPlan, launch: Launch) -> float:
        """Modelled seconds for one launch — the low-fidelity score.

        Pure analytic prediction: nothing is executed, no arrays exist.
        The multi-fidelity searcher ranks the whole candidate pool with
        this before spending any measured evaluations.
        """
        return self.kernel_timing(plan, launch).total_s

    @abc.abstractmethod
    def transfer_time(self, nbytes: int, direction: str) -> float:
        """Host<->device transfer time ("h2d" or "d2h")."""

    def copy_time(self, nbytes: int) -> float:
        """Device-internal buffer copy (read + write through DRAM)."""
        peak = self.spec.peak_bandwidth_gbs * 1e9  # type: ignore[attr-defined]
        return 2.0 * nbytes / (0.8 * peak)
