"""Published specifications (and calibration constants) of the targets.

Each spec records the hardware facts the paper's §IV setup table gives
(peak bandwidth, device identity), the micro-architectural parameters
taken from public datasheets, and a small number of calibration
constants (launch overheads, base pipeline clocks) chosen once so the
simulated *sustained* numbers land near the paper's measured curves.
``EXPERIMENTS.md`` records the resulting paper-vs-model deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..memsim.cache import CacheConfig
from ..memsim.dram import DramSpec
from ..memsim.pcie import PcieLink
from ..units import GB, GIB, KIB, MHZ, MIB, US

__all__ = [
    "DeviceSpec",
    "CpuSpec",
    "GpuSpec",
    "FpgaSpec",
    "XEON_E5_2609V2",
    "GTX_TITAN_BLACK",
    "STRATIX_V_AOCL",
    "VIRTEX7_SDACCEL",
    "PAPER_TARGETS",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Identity and memory system of one target."""

    short_name: str
    name: str
    vendor: str
    device_type: str  # "cpu" | "gpu" | "accelerator"
    core_clock_hz: float
    compute_units: int
    global_mem_bytes: int
    peak_bandwidth_gbs: float
    max_work_group_size: int
    dram: DramSpec
    pcie: PcieLink
    #: fixed cost of getting a kernel running (enqueue, driver, control)
    launch_overhead_s: float = 20e-6


@dataclass(frozen=True)
class CpuSpec(DeviceSpec):
    """A multicore CPU running an OpenCL CPU runtime."""

    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(10 * MIB, line_bytes=64, ways=20)
    )
    #: sustained last-level-cache bandwidth, all cores, bytes/s
    llc_bandwidth: float = 40 * GB
    #: single-core DRAM bandwidth (limited by outstanding misses), bytes/s
    per_core_stream_bw: float = 11 * GB
    #: achievable fraction of DRAM peak with all cores streaming
    stream_efficiency: float = 0.80
    #: data-TLB reach; strided walks beyond this pay page-walk latency
    tlb_reach_bytes: int = 1536 * 4 * KIB
    #: amortized page-walk cost per TLB-missing access
    tlb_miss_s: float = 35e-9


@dataclass(frozen=True)
class GpuSpec(DeviceSpec):
    """A discrete GPU (SIMT) with GDDR memory."""

    warp_size: int = 32
    sm_count: int = 15
    max_warps_per_sm: int = 64
    registers_per_sm: int = 65536
    #: average global-memory latency, seconds
    mem_latency_s: float = 600e-9
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(1536 * KIB, line_bytes=128, ways=16)
    )
    #: memory transaction (segment) size
    segment_bytes: int = 128
    #: sustained fraction of DRAM peak for fully coalesced streams
    stream_efficiency: float = 0.65
    #: L2-to-SM bandwidth multiple over DRAM sustained bandwidth
    l2_bandwidth_factor: float = 4.0
    #: TLB reach before strided walks thrash address translation
    tlb_reach_bytes: int = 32 * MIB
    tlb_miss_s: float = 25e-9
    #: registers a kernel uses per work-item, per vector lane of width
    regs_base: int = 16
    regs_per_lane: int = 4


@dataclass(frozen=True)
class FpgaSpec(DeviceSpec):
    """An FPGA programmed through an OpenCL HLS toolchain."""

    #: unloaded fabric clock of a near-empty kernel, Hz
    base_fmax_hz: float = 300 * MHZ
    #: critical-path growth per unit of utilization: fmax = base/(1+a*u)
    fmax_alpha: float = 1.0
    #: logic cells available (ALMs for Altera, LUTs for Xilinx)
    logic_cells: int = 0
    bram_kbits: int = 0
    dsp_blocks: int = 0
    #: logic cells of the kernel skeleton (control, host interface)
    cells_skeleton: int = 40_000
    #: logic cells of one load/store unit, plus per-lane widening cost
    cells_per_lsu_base: int = 3_000
    cells_per_lsu_lane: int = 8_000
    #: logic cells per scalar ALU lane (add/mul datapath)
    cells_per_alu: int = 1_200
    #: interconnect/arbitration cells per extra compute unit
    cells_arbiter: int = 4_000
    #: BRAM kbits per LSU lane (store/prefetch FIFOs)
    bram_kbits_per_lane: float = 40.0
    #: DSP blocks per multiplier lane (doubles need several)
    dsp_per_mul_lane: int = 4
    #: outstanding memory requests one load/store unit sustains
    lsu_outstanding: int = 4
    #: whether the toolchain infers bursts on flat single-loop kernels
    flat_loop_bursts: bool = True
    #: whether the toolchain pipelines NDRange work-items (II=1 issue)
    pipelined_workitems: bool = True
    #: issue interval (cycles) per work-item when NOT pipelined
    workitem_latency_cycles: int = 180
    #: pipeline fill depth of a memory-streaming loop, cycles
    pipeline_depth_cycles: int = 120
    #: maximum burst the LSU can emit, bytes
    max_burst_bytes: int = 1024
    #: blocking-access round trip when no bursts are inferred, cycles
    blocking_access_cycles: int = 36


# ---------------------------------------------------------------------------
# The four paper targets
# ---------------------------------------------------------------------------

# Intel Xeon E5-2609 v2: 4 cores @ 2.5 GHz, 10 MB L3, 4x DDR3-1333.
# The paper quotes 34 GB/s peak.
XEON_E5_2609V2 = CpuSpec(
    short_name="cpu",
    name="Intel Xeon CPU E5-2609 v2",
    vendor="Intel",
    device_type="cpu",
    core_clock_hz=2.5e9,
    compute_units=4,
    global_mem_bytes=64 * GIB,
    peak_bandwidth_gbs=34.0,
    max_work_group_size=8192,
    dram=DramSpec(
        name="4x DDR3-1333",
        channels=4,
        banks_per_channel=8,
        row_bytes=8 * KIB,
        peak_bandwidth=34 * GB,
        t_row_miss=26e-9,
        t_row_hit=5e-9,
        min_transaction_bytes=64,
    ),
    pcie=PcieLink(generation=3, lanes=16, latency=1e-6),
    launch_overhead_s=40 * US,
)

# NVIDIA GeForce GTX Titan Black: 15 SMX, 889 MHz, 384-bit GDDR5 @ 7 GHz.
# The paper quotes 336 GB/s peak.
GTX_TITAN_BLACK = GpuSpec(
    short_name="gpu",
    name="NVIDIA GeForce GTX Titan Black",
    vendor="NVIDIA",
    device_type="gpu",
    core_clock_hz=889e6,
    compute_units=15,
    global_mem_bytes=6 * GIB,
    peak_bandwidth_gbs=336.0,
    max_work_group_size=1024,
    dram=DramSpec(
        name="GDDR5 384-bit",
        channels=6,
        banks_per_channel=16,
        row_bytes=2 * KIB,
        peak_bandwidth=336 * GB,
        t_row_miss=28e-9,
        t_row_hit=4e-9,
        min_transaction_bytes=32,
    ),
    pcie=PcieLink(generation=3, lanes=16, latency=8e-6),
    launch_overhead_s=8 * US,
    sm_count=15,
    stream_efficiency=0.75,
)

# Altera Stratix V GS D5 on a Nallatech PCIe-385N: 2x DDR3-1600 SODIMM.
# The paper quotes 25 GB/s peak. AOCL 15.1.
STRATIX_V_AOCL = FpgaSpec(
    short_name="aocl",
    name="Altera Stratix V GS D5 (Nallatech PCIe-385, AOCL 15.1)",
    vendor="Altera",
    device_type="accelerator",
    core_clock_hz=316 * MHZ,
    compute_units=1,
    global_mem_bytes=8 * GIB,
    peak_bandwidth_gbs=25.6,
    max_work_group_size=256,
    dram=DramSpec(
        name="2x DDR3-1600 64-bit",
        channels=2,
        banks_per_channel=8,
        row_bytes=2 * KIB,
        peak_bandwidth=25.6 * GB,
        t_row_miss=30e-9,
        t_row_hit=6e-9,
        min_transaction_bytes=64,
        t_rw_turnaround=24e-9,
        rw_batch=2,
    ),
    pcie=PcieLink(generation=3, lanes=8, latency=12e-6),
    launch_overhead_s=50 * US,
    base_fmax_hz=322 * MHZ,
    fmax_alpha=1.0,
    logic_cells=457_000,  # ALMs
    bram_kbits=39_000,
    dsp_blocks=1590,
    cells_skeleton=42_000,
    cells_per_lsu_base=2_500,
    cells_per_lsu_lane=8_200,
    cells_per_alu=1_100,
    cells_arbiter=2_000,
    lsu_outstanding=4,
    flat_loop_bursts=True,
    pipelined_workitems=True,
    workitem_latency_cycles=8,
    pipeline_depth_cycles=120,
    max_burst_bytes=512,
    blocking_access_cycles=24,
)

# Xilinx Virtex-7 XC7VX690T on an Alpha-Data ADM-PCIE-7V3: 1x DDR3-1333.
# The paper quotes 10 GB/s peak. SDAccel 2015.1.
VIRTEX7_SDACCEL = FpgaSpec(
    short_name="sdaccel",
    name="Xilinx Virtex-7 XC7 (Alpha-Data ADM-PCIE-7V3, SDAccel 2015.1)",
    vendor="Xilinx",
    device_type="accelerator",
    core_clock_hz=95 * MHZ,
    compute_units=1,
    global_mem_bytes=16 * GIB,
    peak_bandwidth_gbs=10.0,
    max_work_group_size=256,
    dram=DramSpec(
        name="DDR3-1333 64-bit",
        channels=1,
        banks_per_channel=8,
        row_bytes=2 * KIB,
        peak_bandwidth=10 * GB,
        t_row_miss=32e-9,
        t_row_hit=6e-9,
        min_transaction_bytes=64,
        t_rw_turnaround=24e-9,
        rw_batch=2,
    ),
    pcie=PcieLink(generation=2, lanes=8, latency=15e-6),
    launch_overhead_s=65 * US,
    base_fmax_hz=100 * MHZ,
    fmax_alpha=1.0,
    logic_cells=433_000,  # LUTs
    bram_kbits=52_920,
    dsp_blocks=3600,
    cells_skeleton=45_000,
    cells_per_lsu_base=4_000,
    cells_per_lsu_lane=11_000,
    cells_per_alu=1_600,
    cells_arbiter=6_000,
    lsu_outstanding=1,
    flat_loop_bursts=False,  # the paper's nested-loop quirk
    pipelined_workitems=False,
    workitem_latency_cycles=180,
    pipeline_depth_cycles=150,
    max_burst_bytes=4096,
    blocking_access_cycles=38,
)

#: The paper's four targets in its presentation order.
PAPER_TARGETS: tuple[DeviceSpec, ...] = (
    STRATIX_V_AOCL,
    VIRTEX7_SDACCEL,
    XEON_E5_2609V2,
    GTX_TITAN_BLACK,
)
