"""Altera/Intel AOCL target model.

A thin specialization of :class:`~repro.devices.fpga.model.FpgaModel`:
AOCL's distinguishing behaviours (burst-coalescing LSUs, pipelined
work-items, the ``num_simd_work_items`` / ``num_compute_units``
attributes) are all expressed in the :class:`~repro.devices.specs.FpgaSpec`
flags and the kernel attributes; this class adds the vendor-specific
build-log diagnostics the AOCL offline compiler is known for.
"""

from __future__ import annotations

from ...oclc import KernelIR, LoopMode
from ..base import BuildOptions, ExecutionPlan
from ..specs import STRATIX_V_AOCL, FpgaSpec
from .model import FpgaModel

__all__ = ["AoclModel"]


class AoclModel(FpgaModel):
    """Altera SDK for OpenCL (AOCL 15.1) on a Stratix V board."""

    def __init__(self, spec: FpgaSpec = STRATIX_V_AOCL):
        super().__init__(spec)

    def plan(self, ir: KernelIR, options: BuildOptions) -> ExecutionPlan:
        plan = super().plan(ir, options)
        notes = [plan.build_log]
        simd = ir.attributes.get("num_simd_work_items", (1,))[0]
        if simd > 1 and "reqd_work_group_size" not in ir.attributes:
            notes.append(
                "warning: num_simd_work_items requires reqd_work_group_size; "
                "attribute ignored (matches aoc behaviour)"
            )
        if ir.loop_mode is LoopMode.NDRANGE and "reqd_work_group_size" not in ir.attributes:
            notes.append(
                "note: NDRange kernel without reqd_work_group_size pipelines "
                "work-items at a multi-cycle initiation interval"
            )
        if ir.loop_mode is not LoopMode.NDRANGE:
            notes.append("note: single work-item kernel; loop pipelining applied")
        plan.build_log = "\n".join(notes)
        return plan
