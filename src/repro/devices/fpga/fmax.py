"""Clock-frequency estimation for synthesized kernels.

Achievable fmax falls as the fabric fills: routing congestion stretches
the critical path roughly linearly in utilization, so we model

    fmax = base_fmax / (1 + alpha * max(0, utilization - floor))

The ``floor`` is the skeleton's own utilization — the near-empty kernel
achieves the spec's base clock. Calibrated against the paper's Fig 1b:
per-doubling bandwidth on the FPGAs rises sub-linearly precisely
because fmax sags as the LSUs widen.
"""

from __future__ import annotations

from ..specs import FpgaSpec
from .resources import ResourceReport

__all__ = ["estimate_fmax"]


def estimate_fmax(spec: FpgaSpec, report: ResourceReport) -> float:
    """Achievable kernel clock in Hz for a given resource estimate."""
    floor = spec.cells_skeleton / spec.logic_cells if spec.logic_cells else 0.0
    load = max(0.0, report.utilization - floor)
    return spec.base_fmax_hz / (1.0 + spec.fmax_alpha * load)
