"""Xilinx SDAccel target model.

The 2015.1-era behaviours the paper observed are carried by the spec
flags (``flat_loop_bursts=False``, ``pipelined_workitems=False``) and
the ``xcl_*`` kernel attributes; this class adds the vendor build-log
diagnostics, including the burst-inference report that explains the
paper's nested-loop anomaly.
"""

from __future__ import annotations

from ...oclc import KernelIR, LoopMode
from ..base import BuildOptions, ExecutionPlan
from ..specs import VIRTEX7_SDACCEL, FpgaSpec
from .model import FpgaModel

__all__ = ["SdaccelModel"]


class SdaccelModel(FpgaModel):
    """Xilinx SDAccel 2015.1 on a Virtex-7 board."""

    def __init__(self, spec: FpgaSpec = VIRTEX7_SDACCEL):
        super().__init__(spec)

    def plan(self, ir: KernelIR, options: BuildOptions) -> ExecutionPlan:
        plan = super().plan(ir, options)
        notes = [plan.build_log]
        if ir.loop_mode is LoopMode.FLAT and "xcl_pipeline_loop" not in ir.attributes:
            notes.append(
                "warning: no burst access inferred on the flat loop; "
                "accesses issue through a blocking line buffer "
                "(a nested 2-D loop or xcl_pipeline_loop enables bursts)"
            )
        if ir.loop_mode is LoopMode.NESTED:
            notes.append("note: burst access inferred on the inner loop")
        if ir.loop_mode is LoopMode.NDRANGE and "xcl_pipeline_workitems" not in ir.attributes:
            notes.append(
                "warning: work-items execute sequentially at full kernel "
                "latency; consider xcl_pipeline_workitems"
            )
        plan.build_log = "\n".join(notes)
        return plan
