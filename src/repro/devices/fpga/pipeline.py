"""HLS pipeline synthesis model.

Translates an analyzed kernel plus vendor rules into a
:class:`PipelinePlan`: the initiation interval (II) of the innermost
issue unit, fill/drain depths, data lanes per issue, and whether each
toolchain's load/store units will emit DRAM bursts.

The vendor behaviours that produce the paper's Fig 3:

* **AOCL** pipelines everything: single-work-item loops run at II=1
  with burst-coalescing LSUs; NDRange work-items also pipeline, at II=1
  when ``reqd_work_group_size`` lets the compiler specialize the
  dispatch, at a multi-cycle II otherwise.
* **SDAccel 2015.1** infers bursts only on the *inner loop of a nested
  nest* (the paper's surprising nested-loop win). A flat loop issues
  blocking line-buffered accesses; NDRange work-items execute one at a
  time at full kernel latency unless ``xcl_pipeline_workitems`` is on.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...oclc import KernelIR, LoopMode
from ..specs import FpgaSpec
from .fmax import estimate_fmax
from .resources import ResourceReport, estimate_resources

__all__ = ["PipelinePlan", "synthesize"]


@dataclass(frozen=True)
class PipelinePlan:
    """The synthesized shape of one kernel configuration."""

    mode: LoopMode
    #: cycles between successive innermost iterations (or work-items)
    ii_cycles: float
    #: one-time pipeline fill cost
    depth_cycles: int
    #: extra drain cycles paid per outer-loop iteration (nested nests)
    drain_per_outer_cycles: float
    #: data lanes per issue (vector width x unroll), excluding SIMD
    lanes: int
    simd: int
    compute_units: int
    #: whether the LSUs emit DRAM bursts for contiguous streams
    bursts: bool
    fmax_hz: float
    resources: ResourceReport

    @property
    def issue_rate_hz(self) -> float:
        """Innermost iterations per second, all compute units together."""
        return self.fmax_hz / self.ii_cycles * self.simd * self.compute_units


def synthesize(ir: KernelIR, spec: FpgaSpec) -> PipelinePlan:
    """Derive the pipeline plan of ``ir`` on an FPGA target."""
    simd = max(1, ir.attributes.get("num_simd_work_items", (1,))[0])
    compute_units = max(1, ir.attributes.get("num_compute_units", (1,))[0])
    has_reqd_wg = "reqd_work_group_size" in ir.attributes
    if simd > 1 and not has_reqd_wg:
        # AOCL refuses SIMD without a fixed work-group size; degrade
        # gracefully the way the offline compiler reports it.
        simd = 1
    if ir.loop_mode is not LoopMode.NDRANGE:
        simd = 1

    unroll = ir.unroll_factor if ir.loop_mode is not LoopMode.NDRANGE else 1
    lanes = ir.vector_width * unroll

    resources = estimate_resources(
        ir,
        spec,
        vector_width=ir.vector_width,
        simd=simd,
        compute_units=compute_units,
        unroll=unroll,
    ).check(f"kernel {ir.name!r}")
    fmax = estimate_fmax(spec, resources)

    contiguous = _innermost_contiguous(ir)
    bursts = _bursts_inferred(ir, spec, contiguous)
    ii = _initiation_interval(ir, spec, bursts, contiguous)
    drain = (
        spec.pipeline_depth_cycles / 4.0
        if ir.loop_mode is LoopMode.NESTED
        else 0.0
    )
    return PipelinePlan(
        mode=ir.loop_mode,
        ii_cycles=ii,
        depth_cycles=spec.pipeline_depth_cycles,
        drain_per_outer_cycles=drain,
        lanes=lanes,
        simd=simd,
        compute_units=compute_units,
        bursts=bursts,
        fmax_hz=fmax,
        resources=resources,
    )


def _innermost_contiguous(ir: KernelIR) -> bool:
    """Every *iterating* access advances unit-stride with the innermost
    variable; loop-invariant accesses (e.g. a reduction's final store)
    don't disturb burst inference for the streams that do iterate."""
    inner_var = ir.loops[-1].var if ir.loops else "gid0"
    inner_depth = len(ir.loops)
    saw_stream = False
    for access in ir.accesses:
        if not access.affine.is_affine:
            return False
        stride = access.affine.stride_of(inner_var)
        if access.depth < inner_depth or stride == 0:
            continue  # invariant under the innermost loop
        if stride != 1:
            return False
        saw_stream = True
    return saw_stream


def _bursts_inferred(ir: KernelIR, spec: FpgaSpec, contiguous: bool) -> bool:
    if not contiguous:
        return False
    if ir.loop_mode is LoopMode.NDRANGE:
        # coalescing across work-items needs pipelined work-item issue
        return spec.pipelined_workitems
    if ir.loop_mode is LoopMode.FLAT:
        if spec.flat_loop_bursts:
            return True
        # SDAccel-style: an explicit pipeline attribute recovers bursts
        return "xcl_pipeline_loop" in ir.attributes
    # nested: both toolchains infer bursts on the inner loop
    return True


def _initiation_interval(
    ir: KernelIR, spec: FpgaSpec, bursts: bool, contiguous: bool
) -> float:
    if ir.loop_mode is LoopMode.NDRANGE:
        if spec.pipelined_workitems:
            if "reqd_work_group_size" in ir.attributes:
                return 1.0
            return float(spec.workitem_latency_cycles)
        if "xcl_pipeline_workitems" in ir.attributes:
            return 2.0
        return float(spec.workitem_latency_cycles)
    # counted loops
    if bursts or spec.lsu_outstanding > 1:
        # non-blocking LSUs keep the loop at II=1; memory service time is
        # accounted separately by the model and bounds throughput there.
        return 1.0
    # blocking LSU (SDAccel without burst inference): each access stalls
    # the pipeline; contiguous streams amortize through the line buffer.
    line = 64
    ii = 0.0
    for access in ir.accesses:
        if contiguous:
            ii += spec.blocking_access_cycles * min(
                1.0, access.element_bytes / line
            )
        else:
            ii += float(spec.blocking_access_cycles)
    return max(1.0, ii)
