"""FPGA device model: pipeline issue vs memory service.

Execution time of a launch is the slower of

* the **pipeline**: innermost iterations through the synthesized
  pipeline at its II and fmax (plus fill and per-outer-iteration drain),
  divided across SIMD lanes and compute units; and
* the **memory system**: every access stream's transactions through the
  board's DRAM controller — long bursts for burst-capable LSUs (chopped
  ``compute_units`` ways by the arbiter), or per-element transactions
  with ``lsu_outstanding``-way latency overlap when bursts break.
"""

from __future__ import annotations

from ...oclc import KernelIR, LoopMode
from ..base import (
    AccessProfile,
    BuildOptions,
    DeviceModel,
    ExecutionPlan,
    KernelTiming,
    Launch,
    domain_size,
    profile_accesses,
)
from ..specs import FpgaSpec
from .pipeline import PipelinePlan, synthesize

__all__ = ["FpgaModel"]

#: per-SIMD-lane issue-efficiency loss (dispatch bubbles, lane masking)
_SIMD_DISPATCH_PENALTY = 0.06


class FpgaModel(DeviceModel):
    """Shared model for OpenCL-programmed FPGA boards."""

    spec: FpgaSpec

    def __init__(self, spec: FpgaSpec):
        super().__init__(spec)

    # -- build -------------------------------------------------------------------

    def plan(self, ir: KernelIR, options: BuildOptions) -> ExecutionPlan:
        pplan = synthesize(ir, self.spec)
        log = "\n".join(
            [
                f"fpga build of kernel {ir.name!r} for {self.spec.short_name}",
                f"loop mode {ir.loop_mode}, II={pplan.ii_cycles:.2f} cycles, "
                f"lanes={pplan.lanes}, simd={pplan.simd}, "
                f"compute_units={pplan.compute_units}",
                f"burst inference: {'yes' if pplan.bursts else 'NO'}",
                f"fmax {pplan.fmax_hz / 1e6:.1f} MHz",
                f"resources: {pplan.resources.summary()}",
            ]
        )
        return ExecutionPlan(
            ir=ir, build_log=log, payload=pplan, resources=pplan.resources
        )

    # -- timing -------------------------------------------------------------------

    def kernel_timing(self, plan: ExecutionPlan, launch: Launch) -> KernelTiming:
        ir = plan.ir
        pplan: PipelinePlan = plan.payload
        if pplan is None or pplan.mode is not ir.loop_mode:  # pragma: no cover
            pplan = synthesize(ir, self.spec)

        t_pipe = self._pipeline_time(ir, pplan, launch)
        profiles = profile_accesses(ir, launch)
        t_mem = self._memory_time(profiles, pplan)
        execution = max(t_pipe, t_mem)
        return KernelTiming(
            launch_overhead_s=self.spec.launch_overhead_s,
            execution_s=execution,
            detail={
                "t_pipeline_s": t_pipe,
                "t_memory_s": t_mem,
                "ii_cycles": pplan.ii_cycles,
                "fmax_hz": pplan.fmax_hz,
                "bursts": pplan.bursts,
                "compute_units": pplan.compute_units,
                "simd": pplan.simd,
                "resources": pplan.resources.summary(),
            },
        )

    def _pipeline_time(self, ir: KernelIR, pplan: PipelinePlan, launch: Launch) -> float:
        iters = domain_size(ir, launch)
        unroll = ir.unroll_factor if ir.loop_mode is not LoopMode.NDRANGE else 1
        # unrolling only raises throughput when the widened LSUs can
        # actually stream (bursts); a blocking LSU unrolled is still blocked
        effective_unroll = unroll if (pplan.bursts or unroll == 1) else 1
        # SIMD work-item dispatch inserts pipeline bubbles at work-group
        # boundaries and on masked lanes; returns diminish as N grows
        # (this is why the paper finds the vendor knob "less consistent")
        simd_penalty = 1.0 + _SIMD_DISPATCH_PENALTY * (pplan.simd - 1)
        issue = iters * pplan.ii_cycles * simd_penalty / (
            effective_unroll * pplan.simd * pplan.compute_units
        )
        fill = pplan.depth_cycles
        drain = 0.0
        if ir.loop_mode is LoopMode.NESTED and len(ir.loops) >= 2:
            outer_trips = 1
            for loop in ir.loops[:-1]:
                outer_trips *= loop.trip_count
            drain = outer_trips * pplan.drain_per_outer_cycles
        cycles = issue + fill + drain
        return cycles / pplan.fmax_hz

    def _memory_time(self, profiles: list[AccessProfile], pplan: PipelinePlan) -> float:
        dram = self.spec.dram
        total = 0.0
        write_bytes = sum(p.useful_bytes for p in profiles if p.is_write)
        read_bytes = sum(p.useful_bytes for p in profiles if not p.is_write)
        all_bytes = write_bytes + read_bytes
        # bus turnaround only matters when reads and writes genuinely
        # interleave; weight it by twice the minority share (a lone
        # 8-byte result store among megabytes of reads costs nothing)
        mix = (
            2.0 * min(write_bytes, read_bytes) / all_bytes if all_bytes else 0.0
        )
        turnaround = mix * dram.t_rw_turnaround / dram.rw_batch
        n_streams = len(profiles) * pplan.compute_units
        banks = dram.banks_per_channel * dram.channels
        conflict = max(0.0, (n_streams - banks) / n_streams) if n_streams > banks else 0.0
        for p in profiles:
            if pplan.bursts and p.pattern == "contiguous":
                # long bursts: every fetched byte is useful
                tx_bytes = max(
                    dram.min_transaction_bytes,
                    self.spec.max_burst_bytes // pplan.compute_units,
                )
                tx_per_row = max(1.0, dram.row_bytes / tx_bytes)
                hit = (tx_per_row - 1.0) / tx_per_row * (1.0 - conflict)
                overlap = min(banks, 2 * n_streams)
                n_tx = p.useful_bytes / tx_bytes
            else:
                # bursts broken: one transaction per element access, each
                # fetching a full minimum transaction for a few useful bytes
                tx_bytes = max(dram.min_transaction_bytes, p.element_bytes)
                stride = abs(p.stride_bytes) if p.stride_bytes else dram.row_bytes
                if stride < dram.row_bytes:
                    per_row = max(1.0, dram.row_bytes / stride)
                    hit = (per_row - 1.0) / per_row * (1.0 - conflict)
                else:
                    hit = 0.0
                overlap = min(banks, self.spec.lsu_outstanding)
                n_tx = float(p.n_accesses)
            t_data = tx_bytes / dram.peak_bandwidth
            t_cmd = ((1.0 - hit) * dram.t_row_miss + hit * dram.t_row_hit) / overlap
            per_tx = max(t_data, t_cmd) + turnaround
            total += n_tx * per_tx
        return total

    # -- transfers -----------------------------------------------------------------

    def transfer_time(self, nbytes: int, direction: str) -> float:
        _ = direction
        return self.spec.pcie.transfer_time(nbytes)
