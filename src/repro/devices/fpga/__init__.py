"""FPGA target models: HLS pipeline synthesis, resources, fmax, vendors."""

from __future__ import annotations

from .aocl import AoclModel
from .fmax import estimate_fmax
from .model import FpgaModel
from .pipeline import PipelinePlan, synthesize
from .resources import ResourceReport, estimate_resources
from .sdaccel import SdaccelModel

__all__ = [
    "AoclModel",
    "SdaccelModel",
    "FpgaModel",
    "PipelinePlan",
    "synthesize",
    "ResourceReport",
    "estimate_resources",
    "estimate_fmax",
]
