"""FPGA resource estimation.

HLS vendors report post-synthesis resource usage; the benchmark's
paper-level claim is that the vendor parallelism knobs (SIMD work-items
and especially compute-unit replication) cost more fabric than native
OpenCL vectorization for the same nominal parallelism. The cost model:

* a fixed **kernel skeleton** (host interface, control FSM);
* per **load/store unit**: a base plus a per-lane widening cost
  (byte-enables, alignment networks, FIFOs grow with port width);
* per **ALU lane** for the kernel's arithmetic (SCALE/TRIAD multipliers
  also consume DSP blocks);
* **SIMD** replicates ALU lanes and widens the LSUs — shared control;
* **compute units** replicate *everything* and add an arbiter per unit.

Estimates saturate into a :class:`ResourceReport`; a design whose logic
or BRAM exceeds the device fails the build with
:class:`~repro.errors.ResourceError`, like a real place-and-route.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import ResourceError
from ...oclc import KernelIR
from ..specs import FpgaSpec

__all__ = ["ResourceReport", "estimate_resources"]


@dataclass(frozen=True)
class ResourceReport:
    """Estimated fabric usage of one kernel build."""

    logic_cells: int
    bram_kbits: float
    dsp_blocks: int
    logic_available: int
    bram_available: float
    dsp_available: int

    @property
    def logic_utilization(self) -> float:
        return self.logic_cells / self.logic_available

    @property
    def bram_utilization(self) -> float:
        return self.bram_kbits / self.bram_available if self.bram_available else 0.0

    @property
    def dsp_utilization(self) -> float:
        return self.dsp_blocks / self.dsp_available if self.dsp_available else 0.0

    @property
    def utilization(self) -> float:
        """The binding utilization (max across resource classes)."""
        return max(self.logic_utilization, self.bram_utilization, self.dsp_utilization)

    @property
    def fits(self) -> bool:
        return self.utilization <= 1.0

    def check(self, design: str = "design") -> "ResourceReport":
        for name, used, avail in (
            ("logic", self.logic_cells, self.logic_available),
            ("bram_kbits", self.bram_kbits, self.bram_available),
            ("dsp", self.dsp_blocks, self.dsp_available),
        ):
            if avail and used > avail:
                raise ResourceError(
                    f"{design} does not fit: {name} {used} > {avail}",
                    resource=name,
                    used=float(used),
                    available=float(avail),
                )
        return self

    def summary(self) -> str:
        return (
            f"logic {self.logic_cells}/{self.logic_available} "
            f"({100 * self.logic_utilization:.1f}%), "
            f"BRAM {self.bram_kbits:.0f}/{self.bram_available:.0f} kbit "
            f"({100 * self.bram_utilization:.1f}%), "
            f"DSP {self.dsp_blocks}/{self.dsp_available} "
            f"({100 * self.dsp_utilization:.1f}%)"
        )


def estimate_resources(
    ir: KernelIR,
    spec: FpgaSpec,
    *,
    vector_width: int = 1,
    simd: int = 1,
    compute_units: int = 1,
    unroll: int = 1,
) -> ResourceReport:
    """Estimate fabric usage for one kernel configuration.

    ``vector_width`` is the data-path lanes from OpenCL vector types,
    ``unroll`` multiplies the lanes the same way (an unrolled II=1 loop
    widens its LSUs), ``simd`` is AOCL's ``num_simd_work_items``, and
    ``compute_units`` is full pipeline replication.
    """
    lanes = max(1, vector_width) * max(1, unroll) * max(1, simd)
    n_lsu = max(1, len(ir.accesses))

    lsu_cells = n_lsu * (spec.cells_per_lsu_base + spec.cells_per_lsu_lane * lanes)
    alu_cells = max(1, ir.alu_ops_per_iteration) * spec.cells_per_alu * lanes
    datapath = lsu_cells + alu_cells
    total_cells = spec.cells_skeleton + datapath
    if compute_units > 1:
        # replication repeats the datapath and ~30% of the control
        # skeleton (the host interface and DMA engines are shared),
        # plus an arbiter per unit on the memory interconnect
        total_cells += (compute_units - 1) * int(
            datapath + 0.3 * spec.cells_skeleton
        )
        total_cells += compute_units * spec.cells_arbiter
    if simd > 1:
        # SIMD shares one control FSM; only dispatch logic (work-item id
        # lanes, masking) grows with the SIMD factor
        total_cells += int(0.02 * (spec.cells_skeleton + datapath) * (simd - 1))

    multiplies = ir.mul_ops_per_iteration
    width_factor = 2 if ir.uses_double else 1
    dsp = multiplies * spec.dsp_per_mul_lane * lanes * width_factor * compute_units

    bram = (
        n_lsu * spec.bram_kbits_per_lane * lanes * compute_units
        + 200.0 * compute_units  # control / host-interface buffering
    )
    return ResourceReport(
        logic_cells=int(total_cells),
        bram_kbits=float(bram),
        dsp_blocks=int(dsp),
        logic_available=spec.logic_cells,
        bram_available=float(spec.bram_kbits),
        dsp_available=spec.dsp_blocks,
    )
