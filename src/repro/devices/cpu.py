"""CPU performance model (OpenCL on a multicore Xeon).

Mechanisms, in the order they bind:

1. **Launch overhead** — enqueue + driver + thread-pool wake-up; this is
   what makes kilobyte arrays measure hundredths of the peak (Fig 1a's
   left edge).
2. **Parallelism** — an NDRange fans work-groups out across cores; a
   single-work-item kernel (the FPGA-friendly styles) runs on one core
   and is capped by that core's miss-level parallelism.
3. **Cache hierarchy** — streams whose line-reuse window fits the LLC
   serve their revisits at LLC bandwidth; strided misses pay DRAM
   command overhead and fetch whole lines for one element (traffic
   amplification).
4. **TLB** — strided walks that leave the DTLB reach pay an amortized
   page-walk cost per page-crossing access (Fig 2's large-size strided
   collapse).
5. **DRAM** — the memory controller arbitration of the remaining
   misses, with near-peak efficiency for sequential line streams.
"""

from __future__ import annotations

import math

from ..memsim.controller import MemoryController, StreamDemand
from ..oclc import KernelIR, LoopMode
from .base import (
    AccessProfile,
    BuildOptions,
    DeviceModel,
    ExecutionPlan,
    KernelTiming,
    Launch,
    profile_accesses,
)
from .specs import CpuSpec

__all__ = ["CpuModel"]

#: thread-pool dispatch cost per work-group
_WORK_GROUP_OVERHEAD_S = 50e-9
#: work-group size the runtime picks when the app passes None
_AUTO_LOCAL_SIZE = 1024
#: typical OS page
_PAGE_BYTES = 4096


class CpuModel(DeviceModel):
    """Model of an OpenCL CPU runtime on a multicore Xeon."""

    spec: CpuSpec

    def __init__(self, spec: CpuSpec):
        super().__init__(spec)
        self._controller = MemoryController(spec.dram)

    # -- build -------------------------------------------------------------------

    def plan(self, ir: KernelIR, options: BuildOptions) -> ExecutionPlan:
        notes = [
            f"cpu build of kernel {ir.name!r}: loop mode {ir.loop_mode}",
            f"implicit vectorization width {max(ir.vector_width, 4)} lanes",
        ]
        if ir.loop_mode is not LoopMode.NDRANGE:
            notes.append(
                "single work-item kernel: executes on one core "
                "(consider NDRange on CPU targets)"
            )
        return ExecutionPlan(ir=ir, build_log="\n".join(notes))

    # -- timing -------------------------------------------------------------------

    def kernel_timing(self, plan: ExecutionPlan, launch: Launch) -> KernelTiming:
        spec = self.spec
        ir = plan.ir
        profiles = profile_accesses(ir, launch, line_bytes=spec.llc.line_bytes)

        threads = self._threads(ir, launch)
        sched_s = self._scheduling_overhead(ir, launch, threads)

        llc_bytes = 0.0
        tlb_s = 0.0
        demands: list[StreamDemand] = []
        dram_bytes = 0.0
        for p in profiles:
            traffic = self._stream_traffic(p)
            llc_bytes += traffic["llc_bytes"]
            tlb_s += traffic["tlb_s"]
            dram_bytes += traffic["dram_bytes"]
            if traffic["dram_bytes"] > 0:
                demands.append(
                    StreamDemand(
                        bytes_total=int(traffic["dram_bytes"]),
                        transaction_bytes=traffic["tx_bytes"],
                        sequential=traffic["sequential"],
                        is_write=p.is_write,
                    )
                )

        useful = sum(p.useful_bytes for p in profiles)
        t_dram = (
            self._controller.service(demands).seconds / self._vector_boost(ir)
            if demands
            else 0.0
        )
        t_llc = llc_bytes / spec.llc_bandwidth
        # a single thread cannot extract full DRAM bandwidth
        t_mlp_floor = useful / (threads * spec.per_core_stream_bw)
        execution = max(t_dram + t_llc, t_mlp_floor) + tlb_s / threads
        detail: dict[str, object] = {
            "threads": threads,
            "useful_bytes": useful,
            "dram_bytes": dram_bytes,
            "llc_bytes": llc_bytes,
            "t_dram_s": t_dram,
            "t_llc_s": t_llc,
            "t_mlp_floor_s": t_mlp_floor,
            "tlb_s": tlb_s,
            "scheduling_s": sched_s,
        }
        return KernelTiming(
            launch_overhead_s=spec.launch_overhead_s + sched_s,
            execution_s=execution,
            detail=detail,
        )

    # -- mechanisms ----------------------------------------------------------------

    def _threads(self, ir: KernelIR, launch: Launch) -> int:
        if ir.loop_mode is LoopMode.NDRANGE:
            return max(1, min(self.spec.compute_units, launch.work_items))
        return 1

    def _scheduling_overhead(self, ir: KernelIR, launch: Launch, threads: int) -> float:
        if ir.loop_mode is not LoopMode.NDRANGE:
            return 0.0
        local = (
            launch.local_size[0]
            if launch.local_size
            else min(_AUTO_LOCAL_SIZE, launch.work_items)
        )
        groups = math.ceil(launch.work_items / max(1, local))
        return groups * _WORK_GROUP_OVERHEAD_S / threads

    def _vector_boost(self, ir: KernelIR) -> float:
        """Explicit OpenCL vectors help the CPU only marginally.

        The CPU compiler already auto-vectorizes scalar kernels, so wide
        types only trim loop overhead: a few percent per doubling,
        saturating at width 8 (Fig 1b's nearly flat CPU curve).
        """
        w = min(ir.vector_width, 8)
        return 1.0 + 0.05 * math.log2(max(w, 1))

    def _stream_traffic(self, p: AccessProfile) -> dict:
        """Split one access stream into LLC traffic, DRAM traffic and TLB cost."""
        spec = self.spec
        line = spec.llc.line_bytes
        useful = p.useful_bytes

        if p.pattern == "contiguous":
            # streaming load/store: hardware prefetch, full line use
            return {
                "llc_bytes": 0.0,
                "dram_bytes": float(useful),
                "tx_bytes": float(line),
                "sequential": True,
                "tlb_s": 0.0,
            }

        stride = abs(p.stride_bytes) if p.stride_bytes else line
        accesses_per_line = max(1, line // max(1, min(stride, line)))
        effective_llc = spec.llc.capacity_bytes * (1.0 - 1.0 / (2 * spec.llc.ways))
        reuse_fits = (
            p.reuse_window_bytes is not None
            and p.reuse_window_bytes <= effective_llc
        )
        if stride >= line:
            # column-walk revisits: a line holds line/element elements, so
            # it is touched that many times, one reuse window apart; the
            # revisits hit the LLC only if a full column of lines fits.
            revisits_per_line = max(1, line // p.element_bytes)
            if reuse_fits:
                miss_fraction = 1.0 / revisits_per_line
            else:
                miss_fraction = 1.0
            misses = useful / p.element_bytes * miss_fraction
            dram_bytes = misses * line
            llc_bytes = (1.0 - miss_fraction) * useful
            sequential = False
        else:
            # sub-line stride: spatial reuse within the line
            miss_fraction = 1.0 / accesses_per_line
            dram_bytes = useful / p.element_bytes * miss_fraction * line
            llc_bytes = (1.0 - miss_fraction) * useful
            sequential = True

        tlb_s = 0.0
        if stride >= _PAGE_BYTES and p.footprint_bytes > spec.tlb_reach_bytes:
            # every access lands on a new page and the walk misses the DTLB
            tlb_s = (useful / p.element_bytes) * spec.tlb_miss_s
        return {
            "llc_bytes": llc_bytes,
            "dram_bytes": dram_bytes,
            "tx_bytes": float(line),
            "sequential": sequential,
            "tlb_s": tlb_s,
        }

    # -- transfers -----------------------------------------------------------------

    def transfer_time(self, nbytes: int, direction: str) -> float:
        """CPU-device "transfers" are memcpys within host RAM."""
        _ = direction
        return 1e-6 + 2.0 * nbytes / (
            self.spec.stream_efficiency * self.spec.dram.peak_bandwidth
        )
