"""Hypothetical future targets (the paper's outlook, made runnable).

§IV closes with two predictions:

* "the introduction of high-throughput Hybrid-Memory Cube on FPGA
  boards which have much higher peak bandwidths can change the picture
  we present in this paper considerably";
* "FPGA-OpenCL tools can also be expected to mature over time and show
  more consistent memory performance that takes into account different
  coding styles."

This module encodes both as additional device specs that plug into the
same models, so the ablation bench can *measure* how much of the
paper's picture they change:

* :data:`STRATIX_HMC` — the Stratix V fabric behind a 4-link HMC stack
  (120 GB/s class peak, many more banks, deep request concurrency);
* :data:`VIRTEX7_MATURE` — the same Virtex-7 behind a 2018-class
  toolchain: bursts inferred on flat loops, pipelined work-items,
  non-blocking LSUs, higher achievable clocks.
"""

from __future__ import annotations

from dataclasses import replace

from ..memsim.dram import DramSpec
from ..memsim.pcie import PcieLink
from ..units import GB, GIB, KIB, MHZ, US
from .fpga import AoclModel, SdaccelModel
from .specs import STRATIX_V_AOCL, VIRTEX7_SDACCEL

__all__ = ["STRATIX_HMC", "VIRTEX7_MATURE", "future_device_models"]

#: Stratix V fabric + Hybrid Memory Cube: HMC gen2, 4 half-width links.
#: Vault architecture = massive bank-level parallelism and short rows.
STRATIX_HMC = replace(
    STRATIX_V_AOCL,
    short_name="aocl-hmc",
    name="Altera Stratix V + 4-link Hybrid Memory Cube (hypothetical)",
    peak_bandwidth_gbs=120.0,
    dram=DramSpec(
        name="HMC gen2, 32 vaults",
        channels=8,
        banks_per_channel=32,
        row_bytes=256,  # HMC's small pages
        peak_bandwidth=120 * GB,
        t_row_miss=12e-9,
        t_row_hit=4e-9,
        min_transaction_bytes=32,
        t_rw_turnaround=4e-9,  # packetized links barely care
        rw_batch=8,
    ),
    pcie=PcieLink(generation=3, lanes=8, latency=12e-6),
    global_mem_bytes=4 * GIB,
    lsu_outstanding=32,  # packetized protocol sustains deep queues
    max_burst_bytes=256,
)

#: Same Virtex-7 silicon behind a matured (2018-class) toolchain.
VIRTEX7_MATURE = replace(
    VIRTEX7_SDACCEL,
    short_name="sdaccel-mature",
    name="Xilinx Virtex-7 XC7 (matured toolchain, hypothetical)",
    base_fmax_hz=250 * MHZ,
    launch_overhead_s=30 * US,
    flat_loop_bursts=True,  # burst inference regardless of coding style
    pipelined_workitems=True,
    workitem_latency_cycles=4,
    lsu_outstanding=8,
    blocking_access_cycles=12,
    max_burst_bytes=4 * KIB,
)


def future_device_models() -> list[tuple[str, str, list]]:
    """Platform rows for the hypothetical targets (same registry shape
    as :func:`repro.devices.paper_device_models`)."""
    return [
        ("Altera SDK for OpenCL (HMC board)", "Altera", [AoclModel(STRATIX_HMC)]),
        ("Xilinx SDAccel (matured)", "Xilinx", [SdaccelModel(VIRTEX7_MATURE)]),
    ]
