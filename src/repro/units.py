"""Units: sizes, times, frequencies and bandwidths.

The benchmark literature mixes decimal and binary prefixes freely;
STREAM itself reports MB/s with decimal megabytes. This module pins the
conventions used throughout the reproduction:

* **sizes** are in bytes, binary prefixes (``KiB = 1024``) for buffer
  sizing, but the *reporting* helpers also provide decimal formatting to
  match the paper's "GB/s" axes (decimal, like STREAM);
* **times** are in seconds (floats);
* **frequencies** in hertz;
* **bandwidths** in bytes/second, formatted as decimal GB/s.

Parsing accepts both conventions explicitly: ``parse_size("4MiB")`` is
binary, ``parse_size("4MB")`` is decimal — and the benchmark uses
``MiB`` internally so "4 MB arrays" in the paper map to ``4 * 2**20``
bytes, the conventional reading for power-of-two array lengths.
"""

from __future__ import annotations

import math
import re
from typing import Final

from .errors import UnitParseError

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "KHZ",
    "MHZ",
    "GHZ",
    "US",
    "MS",
    "NS",
    "parse_size",
    "parse_frequency",
    "parse_time",
    "format_size",
    "format_bandwidth",
    "format_time",
    "format_frequency",
    "bandwidth_gbs",
    "geomean",
]

KIB: Final[int] = 1024
MIB: Final[int] = 1024**2
GIB: Final[int] = 1024**3

KB: Final[int] = 1000
MB: Final[int] = 1000**2
GB: Final[int] = 1000**3

KHZ: Final[float] = 1e3
MHZ: Final[float] = 1e6
GHZ: Final[float] = 1e9

NS: Final[float] = 1e-9
US: Final[float] = 1e-6
MS: Final[float] = 1e-3

_SIZE_SUFFIXES: Final[dict[str, int]] = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KB,
    "kib": KIB,
    "m": MIB,
    "mb": MB,
    "mib": MIB,
    "g": GIB,
    "gb": GB,
    "gib": GIB,
    "t": 1024**4,
    "tb": 1000**4,
    "tib": 1024**4,
}

_FREQ_SUFFIXES: Final[dict[str, float]] = {
    "hz": 1.0,
    "khz": KHZ,
    "mhz": MHZ,
    "ghz": GHZ,
}

_TIME_SUFFIXES: Final[dict[str, float]] = {
    "s": 1.0,
    "ms": MS,
    "us": US,
    "ns": NS,
    "m": 60.0,
    "min": 60.0,
}

_QUANTITY_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)\s*([a-zA-Z]*)\s*$")


def _parse(text: str | int | float, table: dict[str, float] | dict[str, int],
           kind: str) -> float:
    if isinstance(text, (int, float)):
        return float(text)
    m = _QUANTITY_RE.match(text)
    if not m:
        raise UnitParseError(f"cannot parse {kind} {text!r}")
    value = float(m.group(1))
    suffix = m.group(2).lower()
    if suffix not in table:
        raise UnitParseError(
            f"unknown {kind} suffix {m.group(2)!r} in {text!r} "
            f"(known: {sorted(table)})"
        )
    return value * table[suffix]


def parse_size(text: str | int | float) -> int:
    """Parse a human-readable size into bytes.

    Binary suffixes (``KiB``/``MiB``/``GiB`` and the bare ``K``/``M``/``G``)
    are powers of 1024; ``KB``/``MB``/``GB`` are powers of 1000.

    >>> parse_size("4MiB")
    4194304
    >>> parse_size("4MB")
    4000000
    >>> parse_size(512)
    512
    """
    value = _parse(text, _SIZE_SUFFIXES, "size")
    if value < 0:
        raise UnitParseError(f"size must be non-negative, got {text!r}")
    return int(round(value))


def parse_frequency(text: str | int | float) -> float:
    """Parse a frequency ("200MHz", "1.05 GHz") into hertz."""
    value = _parse(text, _FREQ_SUFFIXES, "frequency")
    if value <= 0:
        raise UnitParseError(f"frequency must be positive, got {text!r}")
    return value


def parse_time(text: str | int | float) -> float:
    """Parse a duration ("15us", "3ms") into seconds."""
    value = _parse(text, _TIME_SUFFIXES, "time")
    if value < 0:
        raise UnitParseError(f"time must be non-negative, got {text!r}")
    return value


def format_size(nbytes: int | float, *, decimal: bool = False) -> str:
    """Format a byte count with a binary (default) or decimal prefix.

    >>> format_size(4 * MIB)
    '4.00 MiB'
    >>> format_size(25_600_000_000, decimal=True)
    '25.60 GB'
    """
    nbytes = float(nbytes)
    base = 1000.0 if decimal else 1024.0
    units = ["B", "KB", "MB", "GB", "TB"] if decimal else ["B", "KiB", "MiB", "GiB", "TiB"]
    if nbytes == 0:
        return "0 B"
    exp = min(int(math.log(abs(nbytes), base)), len(units) - 1)
    value = nbytes / base**exp
    if exp == 0:
        return f"{int(value)} B"
    return f"{value:.2f} {units[exp]}"


def format_bandwidth(bytes_per_s: float) -> str:
    """Format a bandwidth in decimal GB/s (STREAM's reporting convention).

    >>> format_bandwidth(25.1e9)
    '25.100 GB/s'
    """
    return f"{bytes_per_s / GB:.3f} GB/s"


def format_time(seconds: float) -> str:
    """Format a duration with an auto-selected unit."""
    if seconds == 0:
        return "0 s"
    if seconds < US:
        return f"{seconds / NS:.1f} ns"
    if seconds < MS:
        return f"{seconds / US:.2f} us"
    if seconds < 1.0:
        return f"{seconds / MS:.3f} ms"
    return f"{seconds:.4f} s"


def format_frequency(hz: float) -> str:
    """Format a frequency with an auto-selected unit."""
    if hz >= GHZ:
        return f"{hz / GHZ:.2f} GHz"
    if hz >= MHZ:
        return f"{hz / MHZ:.1f} MHz"
    if hz >= KHZ:
        return f"{hz / KHZ:.1f} kHz"
    return f"{hz:.0f} Hz"


def bandwidth_gbs(nbytes: float, seconds: float) -> float:
    """Bandwidth in decimal GB/s for ``nbytes`` moved in ``seconds``."""
    if seconds <= 0:
        raise ValueError(f"elapsed time must be positive, got {seconds}")
    return nbytes / seconds / GB


def geomean(values: list[float] | tuple[float, ...]) -> float:
    """Geometric mean, used for cross-kernel summary rows."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
